//! Boundary-condition tests for the fixed-point substrate: saturating
//! arithmetic at the integer extremes and round-half-away behaviour exactly
//! at its tie points.

use edea_fixed::sat::{accumulator_bits, clamp_to_bits, fits_in_bits, min_signed_bits};
use edea_fixed::{Q8x16, Round};

const ALL_MODES: [Round; 4] = [
    Round::Truncate,
    Round::Floor,
    Round::HalfAwayFromZero,
    Round::HalfToEven,
];

#[test]
fn saturating_add_pins_at_both_rails() {
    // MAX + anything positive pins at MAX; MIN + anything negative at MIN.
    assert_eq!(Q8x16::MAX.saturating_add(Q8x16::MAX), Q8x16::MAX);
    assert_eq!(Q8x16::MAX.saturating_add(Q8x16::from_raw(1)), Q8x16::MAX);
    assert_eq!(Q8x16::MIN.saturating_add(Q8x16::MIN), Q8x16::MIN);
    assert_eq!(Q8x16::MIN.saturating_add(Q8x16::from_raw(-1)), Q8x16::MIN);
    // The rails cancel to the asymmetry of two's complement: MAX + MIN = -1.
    assert_eq!(Q8x16::MAX.saturating_add(Q8x16::MIN).raw(), -1);
    // One step inside the rail does not saturate.
    assert_eq!(
        Q8x16::MAX.saturating_add(Q8x16::from_raw(-1)),
        Q8x16::from_raw(Q8x16::MAX.raw() - 1)
    );
}

#[test]
fn saturating_mul_pins_at_both_rails() {
    // MIN × MIN = +2^14 exactly — far past MAX, pins high.
    assert_eq!(
        Q8x16::MIN.saturating_mul(Q8x16::MIN, Round::HalfAwayFromZero),
        Q8x16::MAX
    );
    // MIN × MAX ≈ -2^14, pins low.
    assert_eq!(
        Q8x16::MIN.saturating_mul(Q8x16::MAX, Round::HalfAwayFromZero),
        Q8x16::MIN
    );
    // MAX × MAX pins high.
    assert_eq!(
        Q8x16::MAX.saturating_mul(Q8x16::MAX, Round::HalfAwayFromZero),
        Q8x16::MAX
    );
    // Multiplying the rails by ONE is the identity (no spurious saturation,
    // no off-by-one through the rounding shift).
    for v in [Q8x16::MIN, Q8x16::MAX, Q8x16::ZERO, Q8x16::from_raw(-1)] {
        for mode in ALL_MODES {
            assert_eq!(v.saturating_mul(Q8x16::ONE, mode), v, "v={v} mode={mode:?}");
        }
    }
}

#[test]
fn from_raw_saturating_covers_the_whole_i64_range() {
    assert_eq!(Q8x16::from_raw_saturating(i64::MAX), Q8x16::MAX);
    assert_eq!(Q8x16::from_raw_saturating(i64::MIN), Q8x16::MIN);
    assert_eq!(Q8x16::from_raw_saturating(i64::from(i32::MAX)), Q8x16::MAX);
    assert_eq!(Q8x16::from_raw_saturating(i64::from(i32::MIN)), Q8x16::MIN);
    // Exactly at the 24-bit rails: representable, not clipped.
    assert_eq!(Q8x16::from_raw_saturating((1 << 23) - 1), Q8x16::MAX);
    assert_eq!(Q8x16::from_raw_saturating(-(1 << 23)), Q8x16::MIN);
    // One past the rails: clipped to them.
    assert_eq!(Q8x16::from_raw_saturating(1 << 23), Q8x16::MAX);
    assert_eq!(Q8x16::from_raw_saturating(-(1 << 23) - 1), Q8x16::MIN);
}

#[test]
fn mul_int_add_exact_at_i32_extremes() {
    // The accumulator input is an i32; the wide product must be exact (no
    // wrap) even at i32::MIN/MAX with the constants at their rails.
    let w = Q8x16::MIN.mul_int_add(i32::MIN, Q8x16::MIN);
    let want = i64::from(Q8x16::MIN.raw()) * i64::from(i32::MIN) + i64::from(Q8x16::MIN.raw());
    assert_eq!(w.raw(), want);

    let w = Q8x16::MAX.mul_int_add(i32::MAX, Q8x16::MAX);
    let want = i64::from(Q8x16::MAX.raw()) * i64::from(i32::MAX) + i64::from(Q8x16::MAX.raw());
    assert_eq!(w.raw(), want);

    // And the rounded clip stays lawful at the extremes.
    assert_eq!(
        Q8x16::MAX.mul_int_add(i32::MAX, Q8x16::ZERO).round_clip_i8(
            Round::HalfAwayFromZero,
            0,
            127
        ),
        127
    );
    assert_eq!(
        Q8x16::MAX.mul_int_add(i32::MIN, Q8x16::ZERO).round_clip_i8(
            Round::HalfAwayFromZero,
            0,
            127
        ),
        0
    );
}

#[test]
fn half_away_ties_at_every_lsb_boundary() {
    // shift_right by 16 models the Non-Conv round stage. Check the exact
    // tie (fraction = 0x8000) for positive and negative mantissas.
    let half = 1i128 << 15;
    for int_part in [-3i128, -2, -1, 0, 1, 2, 3] {
        let v = (int_part << 16) + half; // exactly int_part + 0.5
        let r = Round::HalfAwayFromZero.shift_right(v, 16);
        let want = if v >= 0 { int_part + 1 } else { int_part };
        assert_eq!(r, want, "tie at {int_part}+0.5");
        // One ULP inside the tie rounds towards the integer part.
        assert_eq!(Round::HalfAwayFromZero.shift_right(v - 1, 16), int_part);
    }
}

#[test]
fn round_half_away_matches_f64_round_on_negative_ties() {
    // f64::round is specified as half-away-from-zero; the integer path must
    // agree on negative ties, which is where add-half-then-shift circuits
    // classically go wrong.
    for i in -9i32..=9 {
        let x = f64::from(i) + 0.5; // …-1.5, -0.5, 0.5, 1.5…
        let via_f64 = Round::HalfAwayFromZero.round_f64(x);
        let scaled = (i128::from(i) << 16) + (1i128 << 15);
        let via_int = Round::HalfAwayFromZero.shift_right(scaled, 16);
        assert_eq!(via_int, via_f64, "x={x}");
        // And the -x tie is the mirror image.
        let via_f64_neg = Round::HalfAwayFromZero.round_f64(-x);
        assert_eq!(via_f64_neg, -via_f64, "x={x}");
    }
}

#[test]
fn shift_right_at_i64_extremes_is_exact() {
    // The widest value the datapath models passes through i128 without
    // overflow and rounds to the true quotient.
    for mode in ALL_MODES {
        let r = mode.shift_right(i128::from(i64::MAX), 16);
        let floor = i128::from(i64::MAX) >> 16;
        assert!((r - floor).abs() <= 1, "mode={mode:?}");
        let r = mode.shift_right(i128::from(i64::MIN), 16);
        assert_eq!(
            r,
            i128::from(i64::MIN) >> 16,
            "i64::MIN is an exact multiple of 2^16"
        );
    }
}

#[test]
fn clamp_to_bits_at_the_i64_rails() {
    assert_eq!(clamp_to_bits(i64::MAX, 63), (1i64 << 62) - 1);
    assert_eq!(clamp_to_bits(i64::MIN, 63), -(1i64 << 62));
    assert_eq!(clamp_to_bits(i64::MAX, 2), 1);
    assert_eq!(clamp_to_bits(i64::MIN, 2), -2);
    assert!(!fits_in_bits(i64::MAX, 63));
    assert!(!fits_in_bits(i64::MIN, 63));
}

#[test]
fn min_signed_bits_at_the_rails_and_around_powers_of_two() {
    assert_eq!(min_signed_bits(i64::MAX), 64);
    assert_eq!(min_signed_bits(i64::MIN), 64);
    // Asymmetry of two's complement: -2^k fits in k+1 bits, 2^k needs k+2.
    for k in 1..62u32 {
        let p = 1i64 << k;
        assert_eq!(min_signed_bits(p), k + 2, "2^{k}");
        assert_eq!(min_signed_bits(p - 1), k + 1, "2^{k}-1");
        assert_eq!(min_signed_bits(-p), k + 1, "-2^{k}");
        assert_eq!(min_signed_bits(-p - 1), k + 2, "-2^{k}-1");
    }
}

#[test]
fn accumulator_bits_monotone_and_safe_at_width_extremes() {
    // n = u64::MAX is the pathological cap: the bound must not overflow and
    // must stay monotone in every argument.
    let b = accumulator_bits(8, 8, u64::MAX);
    assert!(b >= accumulator_bits(8, 8, 1));
    assert!(accumulator_bits(8, 8, 9) <= accumulator_bits(9, 8, 9));
    assert!(accumulator_bits(8, 8, 9) <= accumulator_bits(8, 9, 9));
    // Boundary between bit-length steps: 2^k-1 vs 2^k terms.
    for k in 1..32u32 {
        let n = 1u64 << k;
        assert_eq!(
            accumulator_bits(8, 8, n),
            accumulator_bits(8, 8, n - 1) + 1,
            "n=2^{k}"
        );
    }
}
