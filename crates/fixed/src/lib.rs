//! Fixed-point arithmetic substrate for the EDEA accelerator simulator.
//!
//! The EDEA paper's Non-Convolutional unit (Fig. 6) folds dequantization,
//! batch normalization, ReLU and requantization between the depthwise (DWC)
//! and pointwise (PWC) convolution engines into a single fixed-point affine
//! transform `y = k·x + b`, with `k` and `b` represented as **24-bit
//! fixed-point numbers with 8 integer bits and 16 fractional bits** (Q8.16).
//!
//! This crate provides the bit-exact arithmetic that the hardware would
//! perform:
//!
//! * [`QFormat`] — a runtime description of a signed fixed-point format
//!   (total bits, fractional bits).
//! * [`Fx`] — a value paired with its format, with checked/saturating
//!   conversions and arithmetic. Used by tests and model-exploration code.
//! * [`Q8x16`] — the compile-time-fixed Q8.16 type used by the Non-Conv unit
//!   datapath; cheap, `Copy`, and bit-exact.
//! * [`Round`] — rounding modes (the hardware uses round-half-away-from-zero,
//!   the usual "add half then shift" circuit).
//! * Saturating helper functions in [`sat`].
//!
//! # Example
//!
//! ```
//! use edea_fixed::{Q8x16, Round};
//!
//! // Fold BN parameters into k = 0.40625, b = -3.25 exactly:
//! let k = Q8x16::from_f64(0.40625);
//! let b = Q8x16::from_f64(-3.25);
//! // Apply y = k*x + b to an integer accumulator value x = 100,
//! // rounding to the nearest integer exactly as the RTL would:
//! let y = k.mul_int_add(100, b).round_to_int(Round::HalfAwayFromZero);
//! assert_eq!(y, 37); // 0.40625*100 - 3.25 = 37.375 -> 37
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod format;
mod q8_16;
mod round;
pub mod sat;
mod value;

pub use error::FixedError;
pub use format::QFormat;
pub use q8_16::{Q8x16, WideQ16, Q8X16_FRAC_BITS, Q8X16_INT_BITS, Q8X16_TOTAL_BITS};
pub use round::Round;
pub use value::Fx;
