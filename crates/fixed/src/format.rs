//! Runtime Q-format descriptions.

use std::fmt;

use crate::FixedError;

/// A signed two's-complement fixed-point format: `total_bits` bits in all
/// (including the sign bit), of which `frac_bits` are fractional.
///
/// The conventional name is `Q<i>.<f>` where `i = total_bits - frac_bits -
/// 1`… conventions differ on whether the sign bit is counted; this crate
/// follows the EDEA paper, which calls its 24-bit constant with 8 integer and
/// 16 fractional bits "Q8.16" — i.e. **the integer-bit count includes the
/// sign bit** (`total_bits = int_bits + frac_bits`).
///
/// # Example
///
/// ```
/// use edea_fixed::QFormat;
///
/// let q = QFormat::new(24, 16)?;
/// assert_eq!(q.int_bits(), 8);
/// assert_eq!(q.resolution(), 1.0 / 65536.0);
/// assert_eq!(q.max_value(), 128.0 - 1.0 / 65536.0);
/// assert_eq!(q.min_value(), -128.0);
/// # Ok::<(), edea_fixed::FixedError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QFormat {
    total_bits: u8,
    frac_bits: u8,
}

impl QFormat {
    /// Creates a format with `total_bits` total (2..=63) and `frac_bits`
    /// fractional bits (`frac_bits < total_bits`).
    ///
    /// # Errors
    ///
    /// Returns [`FixedError::InvalidFormat`] if the widths are out of range.
    pub fn new(total_bits: u8, frac_bits: u8) -> Result<Self, FixedError> {
        if !(2..=63).contains(&total_bits) || frac_bits >= total_bits {
            return Err(FixedError::InvalidFormat {
                total_bits,
                frac_bits,
            });
        }
        Ok(Self {
            total_bits,
            frac_bits,
        })
    }

    /// The Q8.16 format of the EDEA Non-Conv constants `k` and `b`.
    #[must_use]
    pub fn q8_16() -> Self {
        Self {
            total_bits: 24,
            frac_bits: 16,
        }
    }

    /// An 8-bit integer format (the activation/weight precision of EDEA).
    #[must_use]
    pub fn int8() -> Self {
        Self {
            total_bits: 8,
            frac_bits: 0,
        }
    }

    /// Total bit width, including the sign bit.
    #[must_use]
    pub fn total_bits(&self) -> u8 {
        self.total_bits
    }

    /// Number of fractional bits.
    #[must_use]
    pub fn frac_bits(&self) -> u8 {
        self.frac_bits
    }

    /// Number of integer bits (including the sign bit, paper convention).
    #[must_use]
    pub fn int_bits(&self) -> u8 {
        self.total_bits - self.frac_bits
    }

    /// Smallest representable increment, `2^-frac_bits`.
    #[must_use]
    // edea-lint: allow(float-in-fixed): reporting boundary, not kernel arithmetic
    pub fn resolution(&self) -> f64 {
        (self.frac_bits as i32)
            .checked_neg()
            .map(|e| 2f64.powi(e)) // edea-lint: allow(float-in-fixed): reporting boundary, not kernel arithmetic
            .unwrap_or(1.0)
    }

    /// Largest representable raw integer, `2^(total_bits-1) - 1`.
    #[must_use]
    pub fn max_raw(&self) -> i64 {
        (1i64 << (self.total_bits - 1)) - 1
    }

    /// Smallest representable raw integer, `-2^(total_bits-1)`.
    #[must_use]
    pub fn min_raw(&self) -> i64 {
        -(1i64 << (self.total_bits - 1))
    }

    /// Largest representable real value.
    #[must_use]
    // edea-lint: allow(float-in-fixed): reporting boundary, not kernel arithmetic
    pub fn max_value(&self) -> f64 {
        self.max_raw() as f64 * self.resolution() // edea-lint: allow(float-in-fixed): reporting boundary, not kernel arithmetic
    }

    /// Smallest representable real value.
    #[must_use]
    // edea-lint: allow(float-in-fixed): reporting boundary, not kernel arithmetic
    pub fn min_value(&self) -> f64 {
        self.min_raw() as f64 * self.resolution() // edea-lint: allow(float-in-fixed): reporting boundary, not kernel arithmetic
    }

    /// Whether `raw` is representable in this format.
    #[must_use]
    pub fn contains_raw(&self, raw: i64) -> bool {
        raw >= self.min_raw() && raw <= self.max_raw()
    }

    /// Clamps `raw` into the representable range (saturation).
    #[must_use]
    pub fn saturate_raw(&self, raw: i128) -> i64 {
        raw.clamp(self.min_raw() as i128, self.max_raw() as i128) as i64
    }
}

impl fmt::Display for QFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}.{}", self.int_bits(), self.frac_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q8_16_matches_paper() {
        let q = QFormat::q8_16();
        assert_eq!(q.total_bits(), 24);
        assert_eq!(q.int_bits(), 8);
        assert_eq!(q.frac_bits(), 16);
        assert_eq!(q.to_string(), "Q8.16");
    }

    #[test]
    fn int8_range() {
        let q = QFormat::int8();
        assert_eq!(q.max_raw(), 127);
        assert_eq!(q.min_raw(), -128);
        assert_eq!(q.resolution(), 1.0);
    }

    #[test]
    fn rejects_bad_widths() {
        assert!(QFormat::new(1, 0).is_err());
        assert!(QFormat::new(64, 0).is_err());
        assert!(QFormat::new(8, 8).is_err());
        assert!(QFormat::new(0, 0).is_err());
        assert!(QFormat::new(63, 62).is_ok());
    }

    #[test]
    fn saturate_clamps_both_ends() {
        let q = QFormat::int8();
        assert_eq!(q.saturate_raw(1000), 127);
        assert_eq!(q.saturate_raw(-1000), -128);
        assert_eq!(q.saturate_raw(5), 5);
    }

    #[test]
    fn range_is_symmetric_up_to_one_lsb() {
        let q = QFormat::q8_16();
        assert_eq!(q.min_value(), -128.0);
        assert!((q.max_value() - (128.0 - q.resolution())).abs() < 1e-12);
    }

    #[test]
    fn contains_raw_boundaries() {
        let q = QFormat::new(16, 8).unwrap();
        assert!(q.contains_raw(q.max_raw()));
        assert!(q.contains_raw(q.min_raw()));
        assert!(!q.contains_raw(q.max_raw() + 1));
        assert!(!q.contains_raw(q.min_raw() - 1));
    }
}
