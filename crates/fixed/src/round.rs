//! Rounding modes for fixed-point right shifts.

/// Rounding mode applied when discarding fractional bits.
///
/// The EDEA Non-Conv unit (Fig. 6 of the paper) contains an explicit `Round`
/// stage between the Q8.16 multiply-add and the int8 clip. The conventional
/// hardware implementation adds half an LSB before truncating, which is
/// [`Round::HalfAwayFromZero`]; the other modes are provided for model
/// exploration and for verifying that the choice of rounding does not change
/// the reported results by more than one LSB.
///
/// # Example
///
/// ```
/// use edea_fixed::Round;
///
/// // Divide 7 by 4 (i.e. drop 2 fractional bits) under different modes:
/// assert_eq!(Round::Truncate.shift_right(7, 2), 1);
/// assert_eq!(Round::HalfAwayFromZero.shift_right(7, 2), 2);
/// assert_eq!(Round::Floor.shift_right(-7, 2), -2);
/// assert_eq!(Round::HalfAwayFromZero.shift_right(-6, 2), -2); // -1.5 -> -2
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Round {
    /// Round towards zero (drop bits of the magnitude). This is what a raw
    /// arithmetic shift does **not** do for negative numbers; see
    /// [`Round::Floor`] for that.
    Truncate,
    /// Round towards negative infinity (arithmetic shift right).
    Floor,
    /// Round to nearest; ties away from zero ("add half then shift" with sign
    /// correction). The default, matching the EDEA RTL.
    #[default]
    HalfAwayFromZero,
    /// Round to nearest; ties to even (IEEE-style). Used to bound the impact
    /// of rounding choice in tests.
    HalfToEven,
}

impl Round {
    /// Shifts `value` right by `bits`, rounding the discarded fraction
    /// according to `self`. `bits == 0` returns `value` unchanged.
    ///
    /// Operates in `i128` so callers may shift wide accumulators without
    /// overflow; EDEA's widest intermediate is well inside 64 bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits >= 127`.
    #[must_use]
    pub fn shift_right(self, value: i128, bits: u32) -> i128 {
        assert!(bits < 127, "shift amount {bits} out of range");
        if bits == 0 {
            return value;
        }
        let floor = value >> bits;
        let frac = value - (floor << bits); // in [0, 2^bits)
        let half = 1i128 << (bits - 1);
        match self {
            Round::Floor => floor,
            Round::Truncate => {
                if value < 0 && frac != 0 {
                    floor + 1
                } else {
                    floor
                }
            }
            Round::HalfAwayFromZero => {
                if value >= 0 {
                    if frac >= half {
                        floor + 1
                    } else {
                        floor
                    }
                } else {
                    // Negative: ties must go away from zero, i.e. more negative.
                    if frac > half {
                        floor + 1
                    } else {
                        floor
                    }
                }
            }
            Round::HalfToEven => {
                if frac > half || (frac == half && (floor & 1) == 1) {
                    floor + 1
                } else {
                    floor
                }
            }
        }
    }

    /// Rounds a finite `f64` to an `i128` under this mode.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN or infinite, or out of `i128` range.
    #[must_use]
    pub fn round_f64(self, x: f64) -> i128 {
        assert!(x.is_finite(), "round_f64 requires a finite input");
        let r = match self {
            Round::Truncate => x.trunc(),
            Round::Floor => x.floor(),
            Round::HalfAwayFromZero => x.round(), // f64::round is half-away-from-zero
            Round::HalfToEven => {
                let r = x.round();
                if (x - x.trunc()).abs() == 0.5 {
                    // tie: pick the even neighbour
                    let lo = x.floor();
                    let hi = x.ceil();
                    if (lo as i128) % 2 == 0 {
                        lo
                    } else {
                        hi
                    }
                } else {
                    r
                }
            }
        };
        assert!(
            r >= i128::MIN as f64 && r <= i128::MAX as f64,
            "rounded value out of i128 range"
        );
        r as i128
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_shift_is_identity() {
        for v in [-5i128, -1, 0, 1, 5, i64::MAX as i128] {
            assert_eq!(Round::HalfAwayFromZero.shift_right(v, 0), v);
        }
    }

    #[test]
    fn floor_matches_arithmetic_shift() {
        for v in -64i128..=64 {
            for b in 1..6u32 {
                assert_eq!(Round::Floor.shift_right(v, b), v >> b, "v={v} b={b}");
            }
        }
    }

    #[test]
    fn truncate_moves_towards_zero() {
        assert_eq!(Round::Truncate.shift_right(7, 2), 1);
        assert_eq!(Round::Truncate.shift_right(-7, 2), -1);
        assert_eq!(Round::Truncate.shift_right(-8, 2), -2);
    }

    #[test]
    fn half_away_from_zero_reference_values() {
        // value / 4 with .5 ties
        assert_eq!(Round::HalfAwayFromZero.shift_right(6, 2), 2); // 1.5 -> 2
        assert_eq!(Round::HalfAwayFromZero.shift_right(-6, 2), -2); // -1.5 -> -2
        assert_eq!(Round::HalfAwayFromZero.shift_right(5, 2), 1); // 1.25 -> 1
        assert_eq!(Round::HalfAwayFromZero.shift_right(-5, 2), -1);
        assert_eq!(Round::HalfAwayFromZero.shift_right(7, 2), 2); // 1.75 -> 2
        assert_eq!(Round::HalfAwayFromZero.shift_right(-7, 2), -2);
    }

    #[test]
    fn half_to_even_reference_values() {
        assert_eq!(Round::HalfToEven.shift_right(6, 2), 2); // 1.5 -> 2 (even)
        assert_eq!(Round::HalfToEven.shift_right(2, 2), 0); // 0.5 -> 0 (even)
        assert_eq!(Round::HalfToEven.shift_right(10, 2), 2); // 2.5 -> 2 (even)
        assert_eq!(Round::HalfToEven.shift_right(-2, 2), 0); // -0.5 -> 0
        assert_eq!(Round::HalfToEven.shift_right(-10, 2), -2); // -2.5 -> -2
    }

    #[test]
    fn shift_matches_f64_reference_on_small_values() {
        for v in -4096i128..=4096 {
            for b in 1..8u32 {
                let exact = v as f64 / f64::from(1u32 << b);
                for mode in [
                    Round::Truncate,
                    Round::Floor,
                    Round::HalfAwayFromZero,
                    Round::HalfToEven,
                ] {
                    let got = mode.shift_right(v, b);
                    let want = mode.round_f64(exact);
                    assert_eq!(got, want, "v={v} b={b} mode={mode:?}");
                }
            }
        }
    }

    #[test]
    fn round_f64_half_to_even_ties() {
        assert_eq!(Round::HalfToEven.round_f64(0.5), 0);
        assert_eq!(Round::HalfToEven.round_f64(1.5), 2);
        assert_eq!(Round::HalfToEven.round_f64(2.5), 2);
        assert_eq!(Round::HalfToEven.round_f64(-1.5), -2);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn round_f64_rejects_nan() {
        let _ = Round::HalfAwayFromZero.round_f64(f64::NAN);
    }
}
