//! Error type for fixed-point construction and conversion.

use std::error::Error;
use std::fmt;

/// Error produced when constructing or converting fixed-point values.
///
/// # Example
///
/// ```
/// use edea_fixed::{QFormat, FixedError};
///
/// let err = QFormat::new(70, 10).unwrap_err();
/// assert!(matches!(err, FixedError::InvalidFormat { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FixedError {
    /// The requested Q-format is not representable (zero total bits, more
    /// fractional than total bits, or more than 63 total bits).
    InvalidFormat {
        /// Requested total bit width (including sign).
        total_bits: u8,
        /// Requested fractional bit count.
        frac_bits: u8,
    },
    /// A value did not fit in the target format and checked conversion was
    /// requested.
    Overflow {
        /// The value that did not fit, expressed in raw target-format LSBs.
        raw: i128,
    },
    /// The input was NaN or infinite.
    NotFinite,
    /// Two operands had different formats where identical formats are
    /// required.
    FormatMismatch {
        /// Format of the left operand.
        lhs: crate::QFormat,
        /// Format of the right operand.
        rhs: crate::QFormat,
    },
}

impl fmt::Display for FixedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FixedError::InvalidFormat {
                total_bits,
                frac_bits,
            } => write!(
                f,
                "invalid fixed-point format: total_bits={total_bits}, frac_bits={frac_bits}"
            ),
            FixedError::Overflow { raw } => {
                write!(
                    f,
                    "value with raw magnitude {raw} overflows the target format"
                )
            }
            FixedError::NotFinite => write!(f, "floating-point input was NaN or infinite"),
            FixedError::FormatMismatch { lhs, rhs } => {
                write!(f, "operand formats differ: {lhs} vs {rhs}")
            }
        }
    }
}

impl Error for FixedError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QFormat;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let e = FixedError::NotFinite;
        let s = e.to_string();
        assert!(s.starts_with("floating"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FixedError>();
    }

    #[test]
    fn format_mismatch_mentions_both_formats() {
        let a = QFormat::new(16, 8).unwrap();
        let b = QFormat::new(24, 16).unwrap();
        let s = FixedError::FormatMismatch { lhs: a, rhs: b }.to_string();
        assert!(s.contains("Q8.8"));
        assert!(s.contains("Q8.16"));
    }
}
