//! Runtime-formatted fixed-point values.

use std::cmp::Ordering;
use std::fmt;

use crate::{FixedError, QFormat, Round};

/// A fixed-point value: a raw two's-complement integer interpreted under a
/// [`QFormat`].
///
/// `Fx` is the flexible, runtime-checked companion of the datapath type
/// [`crate::Q8x16`]; it is used for exploring alternative Non-Conv constant
/// widths (one of the paper's design decisions is that Q8.16 "covers all
/// possible ranges of the values for k and b without losing precision") and
/// in tests that sweep formats.
///
/// # Example
///
/// ```
/// use edea_fixed::{Fx, QFormat, Round};
///
/// let q = QFormat::new(16, 8)?;
/// let a = Fx::from_f64(1.5, q, Round::HalfAwayFromZero)?;
/// let b = Fx::from_f64(2.25, q, Round::HalfAwayFromZero)?;
/// let sum = a.checked_add(b)?;
/// assert_eq!(sum.to_f64(), 3.75);
/// # Ok::<(), edea_fixed::FixedError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Fx {
    raw: i64,
    format: QFormat,
}

impl Fx {
    /// Creates a value from its raw representation.
    ///
    /// # Errors
    ///
    /// Returns [`FixedError::Overflow`] if `raw` is outside the format range.
    pub fn from_raw(raw: i64, format: QFormat) -> Result<Self, FixedError> {
        if !format.contains_raw(raw) {
            return Err(FixedError::Overflow { raw: raw as i128 });
        }
        Ok(Self { raw, format })
    }

    /// Creates a value from raw representation, saturating to the format
    /// range.
    #[must_use]
    pub fn from_raw_saturating(raw: i128, format: QFormat) -> Self {
        Self {
            raw: format.saturate_raw(raw),
            format,
        }
    }

    /// Converts a finite `f64` into this format with the given rounding mode.
    ///
    /// # Errors
    ///
    /// * [`FixedError::NotFinite`] for NaN/infinite inputs.
    /// * [`FixedError::Overflow`] if the rounded value exceeds the range.
    pub fn from_f64(x: f64, format: QFormat, round: Round) -> Result<Self, FixedError> {
        if !x.is_finite() {
            return Err(FixedError::NotFinite);
        }
        let scaled = x * (1u64 << format.frac_bits()) as f64;
        if scaled.abs() >= 2f64.powi(100) {
            return Err(FixedError::Overflow { raw: i128::MAX });
        }
        let raw = round.round_f64(scaled);
        if raw < format.min_raw() as i128 || raw > format.max_raw() as i128 {
            return Err(FixedError::Overflow { raw });
        }
        Ok(Self {
            raw: raw as i64,
            format,
        })
    }

    /// Converts a finite `f64`, saturating on overflow.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN (saturation direction would be meaningless).
    #[must_use]
    pub fn from_f64_saturating(x: f64, format: QFormat, round: Round) -> Self {
        assert!(!x.is_nan(), "cannot saturate a NaN");
        if x.is_infinite() {
            let raw = if x > 0.0 {
                format.max_raw()
            } else {
                format.min_raw()
            };
            return Self { raw, format };
        }
        let scaled = x * (1u64 << format.frac_bits()) as f64;
        let raw = if scaled >= format.max_raw() as f64 {
            format.max_raw() as i128
        } else if scaled <= format.min_raw() as f64 {
            format.min_raw() as i128
        } else {
            round.round_f64(scaled)
        };
        Self::from_raw_saturating(raw, format)
    }

    /// The raw two's-complement representation.
    #[must_use]
    pub fn raw(&self) -> i64 {
        self.raw
    }

    /// The format of this value.
    #[must_use]
    pub fn format(&self) -> QFormat {
        self.format
    }

    /// The real value represented, exactly (every `Fx` is a dyadic rational
    /// representable in `f64` for total widths ≤ 53 bits).
    #[must_use]
    pub fn to_f64(&self) -> f64 {
        self.raw as f64 * self.format.resolution()
    }

    /// Checked addition; both operands must share a format.
    ///
    /// # Errors
    ///
    /// [`FixedError::FormatMismatch`] or [`FixedError::Overflow`].
    pub fn checked_add(self, other: Self) -> Result<Self, FixedError> {
        self.require_same_format(other)?;
        let raw = self.raw as i128 + other.raw as i128;
        if !self
            .format
            .contains_raw(raw.clamp(i64::MIN as i128, i64::MAX as i128) as i64)
            || raw > i64::MAX as i128
            || raw < i64::MIN as i128
        {
            return Err(FixedError::Overflow { raw });
        }
        Ok(Self {
            raw: raw as i64,
            format: self.format,
        })
    }

    /// Saturating addition; both operands must share a format.
    ///
    /// # Errors
    ///
    /// [`FixedError::FormatMismatch`].
    pub fn saturating_add(self, other: Self) -> Result<Self, FixedError> {
        self.require_same_format(other)?;
        let raw = self.raw as i128 + other.raw as i128;
        Ok(Self::from_raw_saturating(raw, self.format))
    }

    /// Multiplies two fixed-point values; the exact product (format
    /// `Qa.(fa+fb)`) is rounded back into `self`'s format with `round`,
    /// saturating on overflow.
    ///
    /// # Errors
    ///
    /// [`FixedError::FormatMismatch`] if formats differ.
    pub fn saturating_mul(self, other: Self, round: Round) -> Result<Self, FixedError> {
        self.require_same_format(other)?;
        let prod = self.raw as i128 * other.raw as i128;
        let raw = round.shift_right(prod, u32::from(self.format.frac_bits()));
        Ok(Self::from_raw_saturating(raw, self.format))
    }

    /// Converts into another format, rounding (when narrowing the fraction)
    /// and saturating (when the integer part shrinks).
    #[must_use]
    pub fn convert(self, target: QFormat, round: Round) -> Self {
        let ff = i32::from(self.format.frac_bits());
        let tf = i32::from(target.frac_bits());
        let raw = if tf >= ff {
            (self.raw as i128) << (tf - ff)
        } else {
            round.shift_right(self.raw as i128, (ff - tf) as u32)
        };
        Self::from_raw_saturating(raw, target)
    }

    fn require_same_format(self, other: Self) -> Result<(), FixedError> {
        if self.format != other.format {
            return Err(FixedError::FormatMismatch {
                lhs: self.format,
                rhs: other.format,
            });
        }
        Ok(())
    }
}

impl PartialEq for Fx {
    fn eq(&self, other: &Self) -> bool {
        // Compare the represented real value, independent of format.
        self.raw as i128 * (1i128 << other.format.frac_bits())
            == other.raw as i128 * (1i128 << self.format.frac_bits())
    }
}

impl Eq for Fx {}

impl PartialOrd for Fx {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Fx {
    fn cmp(&self, other: &Self) -> Ordering {
        let a = self.raw as i128 * (1i128 << other.format.frac_bits());
        let b = other.raw as i128 * (1i128 << self.format.frac_bits());
        a.cmp(&b)
    }
}

impl fmt::Display for Fx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.to_f64(), self.format)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(t: u8, fr: u8) -> QFormat {
        QFormat::new(t, fr).unwrap()
    }

    #[test]
    fn from_f64_exact_dyadics_round_trip() {
        let fmt = q(24, 16);
        for x in [
            0.0,
            1.0,
            -1.0,
            0.5,
            -0.25,
            127.5,
            -128.0,
            0.0000152587890625,
        ] {
            let v = Fx::from_f64(x, fmt, Round::HalfAwayFromZero).unwrap();
            assert_eq!(v.to_f64(), x, "x={x}");
        }
    }

    #[test]
    fn from_f64_overflow_detected() {
        let fmt = q(8, 0);
        assert!(Fx::from_f64(127.0, fmt, Round::HalfAwayFromZero).is_ok());
        assert!(Fx::from_f64(128.0, fmt, Round::HalfAwayFromZero).is_err());
        assert!(Fx::from_f64(-128.0, fmt, Round::HalfAwayFromZero).is_ok());
        assert!(Fx::from_f64(-129.0, fmt, Round::HalfAwayFromZero).is_err());
    }

    #[test]
    fn saturating_from_f64_clamps() {
        let fmt = q(8, 0);
        assert_eq!(Fx::from_f64_saturating(1e9, fmt, Round::Floor).raw(), 127);
        assert_eq!(Fx::from_f64_saturating(-1e9, fmt, Round::Floor).raw(), -128);
        assert_eq!(
            Fx::from_f64_saturating(f64::INFINITY, fmt, Round::Floor).raw(),
            127
        );
    }

    #[test]
    fn add_and_mul_match_reals() {
        let fmt = q(32, 16);
        let a = Fx::from_f64(3.25, fmt, Round::HalfAwayFromZero).unwrap();
        let b = Fx::from_f64(-1.75, fmt, Round::HalfAwayFromZero).unwrap();
        assert_eq!(a.checked_add(b).unwrap().to_f64(), 1.5);
        assert_eq!(
            a.saturating_mul(b, Round::HalfAwayFromZero)
                .unwrap()
                .to_f64(),
            -5.6875
        );
    }

    #[test]
    fn mismatched_formats_rejected() {
        let a = Fx::from_f64(1.0, q(16, 8), Round::Floor).unwrap();
        let b = Fx::from_f64(1.0, q(24, 16), Round::Floor).unwrap();
        assert!(matches!(
            a.checked_add(b),
            Err(FixedError::FormatMismatch { .. })
        ));
    }

    #[test]
    fn eq_and_ord_compare_real_values_across_formats() {
        let a = Fx::from_f64(1.5, q(16, 8), Round::Floor).unwrap();
        let b = Fx::from_f64(1.5, q(24, 16), Round::Floor).unwrap();
        let c = Fx::from_f64(2.0, q(24, 16), Round::Floor).unwrap();
        assert_eq!(a, b);
        assert!(a < c);
        assert!(c > b);
    }

    #[test]
    fn convert_widens_exactly_and_narrows_with_rounding() {
        let a = Fx::from_f64(1.625, q(16, 8), Round::Floor).unwrap();
        let wide = a.convert(q(32, 24), Round::Floor);
        assert_eq!(wide.to_f64(), 1.625);
        let narrow = wide.convert(q(8, 1), Round::HalfAwayFromZero);
        assert_eq!(narrow.to_f64(), 1.5); // 1.625 -> nearest half
    }

    #[test]
    fn convert_saturates_when_integer_part_shrinks() {
        let a = Fx::from_f64(100.0, q(16, 4), Round::Floor).unwrap();
        let small = a.convert(q(8, 4), Round::Floor);
        assert_eq!(small.raw(), small.format().max_raw());
    }

    #[test]
    fn display_includes_format() {
        let a = Fx::from_f64(1.5, q(16, 8), Round::Floor).unwrap();
        assert_eq!(a.to_string(), "1.5 (Q8.8)");
    }
}
