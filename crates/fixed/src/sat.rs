//! Saturating integer helpers used throughout the accelerator datapath.
//!
//! The engines accumulate int8×int8 products into wide registers; these
//! helpers express the width-limited behaviour of those registers so the
//! simulator fails loudly (in debug) or saturates (like the RTL) instead of
//! silently wrapping.

/// Clamps a wide accumulator to a signed `bits`-wide two's-complement range.
///
/// # Panics
///
/// Panics if `bits` is not in `2..=63`.
///
/// # Example
///
/// ```
/// use edea_fixed::sat::clamp_to_bits;
///
/// assert_eq!(clamp_to_bits(1000, 8), 127);
/// assert_eq!(clamp_to_bits(-1000, 8), -128);
/// assert_eq!(clamp_to_bits(42, 8), 42);
/// ```
#[must_use]
pub fn clamp_to_bits(value: i64, bits: u32) -> i64 {
    assert!((2..=63).contains(&bits), "bit width {bits} out of range");
    let max = (1i64 << (bits - 1)) - 1;
    let min = -(1i64 << (bits - 1));
    value.clamp(min, max)
}

/// Whether `value` fits in a signed `bits`-wide register.
///
/// # Panics
///
/// Panics if `bits` is not in `2..=63`.
#[must_use]
pub fn fits_in_bits(value: i64, bits: u32) -> bool {
    clamp_to_bits(value, bits) == value
}

/// Minimum signed bit width (including sign) needed to hold `value`.
///
/// # Example
///
/// ```
/// use edea_fixed::sat::min_signed_bits;
///
/// assert_eq!(min_signed_bits(0), 1);
/// assert_eq!(min_signed_bits(127), 8);
/// assert_eq!(min_signed_bits(128), 9);
/// assert_eq!(min_signed_bits(-128), 8);
/// assert_eq!(min_signed_bits(-129), 9);
/// ```
#[must_use]
pub fn min_signed_bits(value: i64) -> u32 {
    if value >= 0 {
        64 - value.leading_zeros() + 1
    } else {
        64 - (!value).leading_zeros() + 1
    }
}

/// Worst-case signed bit width of a sum of `n` products of `a_bits`×`b_bits`
/// signed operands — used to size the adder trees of the engines.
///
/// The worst-case sum magnitude is `n · 2^(a_bits-1) · 2^(b_bits-1)` (every
/// pair being `(-2^(a-1))·(-2^(b-1))`), which as a *positive* value needs
/// `bitlength(n) + a_bits + b_bits - 2 + 1` signed bits.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Example
///
/// ```
/// use edea_fixed::sat::accumulator_bits;
///
/// // A 3x3 DWC window of int8*int8 products:
/// assert_eq!(accumulator_bits(8, 8, 9), 19);
/// // An 8-deep PWC dot product:
/// assert_eq!(accumulator_bits(8, 8, 8), 19);
/// // A full-depth MobileNetV1 PWC accumulation (D = 1024):
/// assert_eq!(accumulator_bits(8, 8, 1024), 26);
/// ```
#[must_use]
pub fn accumulator_bits(a_bits: u32, b_bits: u32, n: u64) -> u32 {
    assert!(n > 0, "accumulator of zero terms");
    let bitlen_n = 64 - n.leading_zeros(); // floor(log2(n)) + 1
    a_bits + b_bits - 2 + bitlen_n + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_bounds_are_inclusive() {
        assert_eq!(clamp_to_bits(127, 8), 127);
        assert_eq!(clamp_to_bits(-128, 8), -128);
        assert_eq!(clamp_to_bits(128, 8), 127);
        assert_eq!(clamp_to_bits(-129, 8), -128);
    }

    #[test]
    fn fits_in_bits_boundaries() {
        assert!(fits_in_bits(32767, 16));
        assert!(!fits_in_bits(32768, 16));
        assert!(fits_in_bits(-32768, 16));
        assert!(!fits_in_bits(-32769, 16));
    }

    #[test]
    fn min_signed_bits_reference() {
        assert_eq!(min_signed_bits(1), 2);
        assert_eq!(min_signed_bits(-1), 1);
        assert_eq!(min_signed_bits(i64::MAX), 64);
        assert_eq!(min_signed_bits(i64::MIN), 64);
    }

    #[test]
    fn accumulator_bits_covers_worst_case() {
        // Exhaustively verify for small widths: the worst-case sum fits and
        // the bound is tight (the worst case does NOT fit in one bit less).
        for n in [1u64, 2, 3, 8, 9, 16, 100] {
            let bits = accumulator_bits(4, 4, n);
            let worst = (8i64 * 8) * n as i64; // (-8)*(-8) = 64 per term
            assert!(fits_in_bits(worst, bits), "n={n} bits={bits} worst={worst}");
            assert!(!fits_in_bits(worst, bits - 1), "bound not tight for n={n}");
        }
    }

    #[test]
    fn dwc_adder_tree_width_matches_design() {
        // 9-input int8 adder tree: 19 bits < 24-bit bus of Fig. 6.
        assert!(accumulator_bits(8, 8, 9) <= 24);
    }

    #[test]
    fn pwc_full_depth_accumulation_fits_i32() {
        // PWC accumulates across D/Td passes: up to 128 passes of 8-deep dots
        // for MobileNetV1 (D=1024): 1024-term int8 accumulation = 25 bits.
        assert!(accumulator_bits(8, 8, 1024) <= 32);
    }

    #[test]
    #[should_panic(expected = "zero terms")]
    fn accumulator_bits_rejects_zero() {
        let _ = accumulator_bits(8, 8, 0);
    }
}
