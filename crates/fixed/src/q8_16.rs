//! The Q8.16 datapath type of the Non-Conv unit.

use std::fmt;

use crate::{QFormat, Round};

/// Total bit width of the Non-Conv constants (paper: "24-bit fixed-point").
pub const Q8X16_TOTAL_BITS: u32 = 24;
/// Integer bits (including sign), paper: "8 integer bits".
pub const Q8X16_INT_BITS: u32 = 8;
/// Fractional bits, paper: "16 fractional bits".
pub const Q8X16_FRAC_BITS: u32 = 16;

const RAW_MAX: i32 = (1 << (Q8X16_TOTAL_BITS - 1)) - 1; // 8388607
const RAW_MIN: i32 = -(1 << (Q8X16_TOTAL_BITS - 1)); // -8388608

/// A 24-bit Q8.16 fixed-point number — the representation the EDEA Non-Conv
/// unit uses for the folded batch-norm/quantization constants `k` and `b`
/// (paper Sec. III-C: "we select k and b as 24-bit fixed-point numbers with 8
/// integer bits and 16 fractional bits").
///
/// The value represented is `raw / 2^16`, with `raw` a 24-bit two's-complement
/// integer stored in an `i32`. All arithmetic is bit-exact with respect to the
/// hardware: multiplication by an integer accumulator value is performed in
/// wide precision and only rounded/ saturated where the RTL would.
///
/// # Example
///
/// ```
/// use edea_fixed::{Q8x16, Round};
///
/// let k = Q8x16::from_f64(0.5);
/// let b = Q8x16::from_f64(1.25);
/// // y = k*x + b for x = 7  ->  4.75, still in Q8.16:
/// let y = k.mul_int_add(7, b);
/// assert_eq!(y.to_f64(), 4.75);
/// assert_eq!(y.round_to_int(Round::HalfAwayFromZero), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Q8x16(i32);

impl Q8x16 {
    /// Zero.
    pub const ZERO: Self = Self(0);
    /// One (raw `1 << 16`).
    pub const ONE: Self = Self(1 << Q8X16_FRAC_BITS);
    /// Largest representable value, `127.99998474…`.
    pub const MAX: Self = Self(RAW_MAX);
    /// Smallest representable value, `-128.0`.
    pub const MIN: Self = Self(RAW_MIN);

    /// Builds from a raw 24-bit two's-complement integer.
    ///
    /// # Panics
    ///
    /// Panics if `raw` does not fit in 24 bits. Use
    /// [`Q8x16::from_raw_saturating`] for a non-panicking variant.
    #[must_use]
    pub fn from_raw(raw: i32) -> Self {
        assert!(
            (RAW_MIN..=RAW_MAX).contains(&raw),
            "raw value {raw} outside 24-bit range [{RAW_MIN}, {RAW_MAX}]"
        );
        Self(raw)
    }

    /// Builds from a raw integer, saturating to the 24-bit range.
    #[must_use]
    pub fn from_raw_saturating(raw: i64) -> Self {
        Self(raw.clamp(RAW_MIN as i64, RAW_MAX as i64) as i32)
    }

    /// Converts a finite `f64`, rounding half away from zero and saturating —
    /// this is how offline software prepares `k`/`b` for the accelerator.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    #[must_use]
    pub fn from_f64(x: f64) -> Self {
        assert!(!x.is_nan(), "cannot convert NaN to Q8.16");
        if x.is_infinite() {
            return if x > 0.0 { Self::MAX } else { Self::MIN };
        }
        let scaled = x * f64::from(1u32 << Q8X16_FRAC_BITS);
        if scaled >= RAW_MAX as f64 {
            Self::MAX
        } else if scaled <= RAW_MIN as f64 {
            Self::MIN
        } else {
            Self(Round::HalfAwayFromZero.round_f64(scaled) as i32)
        }
    }

    /// The raw 24-bit representation.
    #[must_use]
    pub fn raw(&self) -> i32 {
        self.0
    }

    /// The represented real value (exact: Q8.16 ⊂ f64).
    #[must_use]
    pub fn to_f64(&self) -> f64 {
        f64::from(self.0) / f64::from(1u32 << Q8X16_FRAC_BITS)
    }

    /// The [`QFormat`] describing this type.
    #[must_use]
    pub fn format() -> QFormat {
        QFormat::q8_16()
    }

    /// The quantization error committed when representing `x`:
    /// `|x - from_f64(x)| ≤ 2^-17` within range.
    #[must_use]
    // edea-lint: allow(float-in-fixed): conversion boundary, measures f64 round-trip error
    pub fn quantization_error(x: f64) -> f64 {
        (x - Self::from_f64(x).to_f64()).abs()
    }

    /// Fixed-point multiply-add `k·x + b` where `x` is an integer (the DWC
    /// accumulator value), `k = self`, producing a Q8.16-scaled wide product.
    ///
    /// The hardware keeps the full `24 + 32`-bit product before the round
    /// stage; we model that with [`WideQ16`], which the caller then rounds to
    /// an integer and clips (see [`WideQ16::round_to_int`]).
    #[must_use]
    pub fn mul_int_add(self, x: i32, b: Q8x16) -> WideQ16 {
        let prod = i64::from(self.0) * i64::from(x); // Q8.16 * int -> Q?.16
        WideQ16(prod + i64::from(b.0))
    }

    /// Saturating Q8.16 + Q8.16 addition.
    #[must_use]
    pub fn saturating_add(self, other: Self) -> Self {
        Self::from_raw_saturating(i64::from(self.0) + i64::from(other.0))
    }

    /// Saturating Q8.16 × Q8.16 multiplication with rounding.
    #[must_use]
    pub fn saturating_mul(self, other: Self, round: Round) -> Self {
        let prod = i64::from(self.0) as i128 * i64::from(other.0) as i128;
        let raw = round.shift_right(prod, Q8X16_FRAC_BITS);
        Self::from_raw_saturating(raw as i64)
    }

    /// Negation, saturating at the asymmetric minimum.
    #[must_use]
    pub fn saturating_neg(self) -> Self {
        Self::from_raw_saturating(-(i64::from(self.0)))
    }
}

impl fmt::Display for Q8x16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f64())
    }
}

impl fmt::LowerHex for Q8x16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&(self.0 & 0x00ff_ffff), f)
    }
}

impl fmt::UpperHex for Q8x16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&(self.0 & 0x00ff_ffff), f)
    }
}

impl fmt::Binary for Q8x16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&(self.0 & 0x00ff_ffff), f)
    }
}

/// The wide (pre-round) result of the Non-Conv multiply-add: an integer value
/// scaled by `2^16`. The RTL carries this on an internal bus wide enough not
/// to overflow (paper Fig. 6 "Rescale Int24" path); `i64` is ample.
///
/// # Example
///
/// ```
/// use edea_fixed::{Q8x16, Round};
///
/// let w = Q8x16::from_f64(0.75).mul_int_add(3, Q8x16::ZERO);
/// assert_eq!(w.to_f64(), 2.25);
/// assert_eq!(w.round_to_int(Round::HalfAwayFromZero), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct WideQ16(i64);

impl WideQ16 {
    /// The raw value scaled by `2^16`.
    #[must_use]
    pub fn raw(&self) -> i64 {
        self.0
    }

    /// The represented real value.
    #[must_use]
    pub fn to_f64(&self) -> f64 {
        self.0 as f64 / f64::from(1u32 << Q8X16_FRAC_BITS)
    }

    /// Saturating wide + wide addition — the residual-accumulate path of
    /// the Non-Conv unit (a requantized skip connection is summed onto the
    /// `k·x + b` bus *before* the round stage, so fold-then-add and
    /// add-then-fold are bit-identical).
    #[must_use]
    pub fn saturating_add(self, other: WideQ16) -> WideQ16 {
        WideQ16(self.0.saturating_add(other.0))
    }

    /// Rounds to an integer — the Round stage of Fig. 6.
    #[must_use]
    pub fn round_to_int(self, round: Round) -> i64 {
        round.shift_right(self.0 as i128, Q8X16_FRAC_BITS) as i64
    }

    /// Rounds and clips to int8 with ReLU folded in (`lo = 0`) or without
    /// (`lo = -128`) — the Clip stage of Fig. 6.
    #[must_use]
    pub fn round_clip_i8(self, round: Round, lo: i8, hi: i8) -> i8 {
        debug_assert!(lo <= hi, "empty clip range");
        self.round_to_int(round).clamp(i64::from(lo), i64::from(hi)) as i8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_paper_ranges() {
        assert_eq!(Q8x16::MIN.to_f64(), -128.0);
        assert!((Q8x16::MAX.to_f64() - (128.0 - 1.0 / 65536.0)).abs() < 1e-12);
        assert_eq!(Q8x16::ONE.to_f64(), 1.0);
        assert_eq!(Q8X16_TOTAL_BITS, Q8X16_INT_BITS + Q8X16_FRAC_BITS);
    }

    #[test]
    fn from_f64_rounds_to_nearest() {
        // 2^-17 rounds up to one LSB (half away from zero).
        let lsb = 1.0 / 65536.0;
        assert_eq!(Q8x16::from_f64(lsb / 2.0).raw(), 1);
        assert_eq!(Q8x16::from_f64(lsb / 2.0 - 1e-9).raw(), 0);
        assert_eq!(Q8x16::from_f64(-lsb / 2.0).raw(), -1);
    }

    #[test]
    fn from_f64_saturates() {
        assert_eq!(Q8x16::from_f64(1e6), Q8x16::MAX);
        assert_eq!(Q8x16::from_f64(-1e6), Q8x16::MIN);
        assert_eq!(Q8x16::from_f64(f64::INFINITY), Q8x16::MAX);
        assert_eq!(Q8x16::from_f64(f64::NEG_INFINITY), Q8x16::MIN);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn from_f64_rejects_nan() {
        let _ = Q8x16::from_f64(f64::NAN);
    }

    #[test]
    fn mul_int_add_is_exact() {
        // Q8.16 * int + Q8.16 is exact in i64: verify against f64 on exact cases.
        let k = Q8x16::from_f64(1.5);
        let b = Q8x16::from_f64(-0.25);
        let w = k.mul_int_add(1000, b);
        assert_eq!(w.to_f64(), 1499.75);
        assert_eq!(w.round_to_int(Round::HalfAwayFromZero), 1500);
    }

    #[test]
    fn round_clip_i8_with_relu_floor() {
        let k = Q8x16::from_f64(1.0);
        let neg = k.mul_int_add(-5, Q8x16::ZERO);
        assert_eq!(neg.round_clip_i8(Round::HalfAwayFromZero, 0, 127), 0);
        let big = k.mul_int_add(100_000, Q8x16::ZERO);
        assert_eq!(big.round_clip_i8(Round::HalfAwayFromZero, 0, 127), 127);
        let mid = k.mul_int_add(64, Q8x16::ZERO);
        assert_eq!(mid.round_clip_i8(Round::HalfAwayFromZero, 0, 127), 64);
    }

    #[test]
    fn quantization_error_bounded_by_half_lsb() {
        let lsb = 1.0 / 65536.0;
        for i in 0..1000 {
            let x = -100.0 + 0.21371 * f64::from(i);
            assert!(Q8x16::quantization_error(x) <= lsb / 2.0 + 1e-15, "x={x}");
        }
    }

    #[test]
    fn hex_formatting_masks_to_24_bits() {
        assert_eq!(format!("{:x}", Q8x16::from_raw(-1)), "ffffff");
        assert_eq!(format!("{:X}", Q8x16::ONE), "10000");
        assert_eq!(format!("{:b}", Q8x16::from_raw(1)), "1");
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(Q8x16::MAX.saturating_add(Q8x16::ONE), Q8x16::MAX);
        assert_eq!(Q8x16::MIN.saturating_add(Q8x16::MIN), Q8x16::MIN);
        assert_eq!(Q8x16::MIN.saturating_neg(), Q8x16::MAX); // |-128| saturates
        let two = Q8x16::from_f64(2.0);
        assert_eq!(
            two.saturating_mul(two, Round::HalfAwayFromZero).to_f64(),
            4.0
        );
        assert_eq!(
            Q8x16::from_f64(100.0).saturating_mul(two, Round::HalfAwayFromZero),
            Q8x16::MAX
        );
    }

    #[test]
    fn from_raw_panics_out_of_range() {
        assert!(std::panic::catch_unwind(|| Q8x16::from_raw(1 << 23)).is_err());
        assert!(std::panic::catch_unwind(|| Q8x16::from_raw((1 << 23) - 1)).is_ok());
    }
}
