//! Golden-report test over the known-bad corpus in `tests/corpus/`.
//!
//! The corpus mirrors the workspace layout (`crates/<name>/src/*.rs`) so
//! the path-scoped rules apply exactly as they do on the real tree. The
//! rendered report is pinned in `tests/corpus/report.golden`; regenerate
//! with `UPDATE_GOLDEN=1 cargo test -p edea-lint --test corpus_golden`.

use std::collections::BTreeSet;
use std::path::PathBuf;

fn corpus_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

#[test]
fn corpus_report_matches_golden() {
    let report = edea_lint::scan_workspace(&corpus_root()).expect("corpus scans");
    let rendered = report.render();

    let golden_path = corpus_root().join("report.golden");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &rendered).expect("write golden");
    }
    let golden = std::fs::read_to_string(&golden_path)
        .expect("tests/corpus/report.golden missing; regenerate with UPDATE_GOLDEN=1");
    assert_eq!(
        rendered, golden,
        "corpus lint report drifted from tests/corpus/report.golden; \
         rerun with UPDATE_GOLDEN=1 if the change is intentional"
    );
}

#[test]
fn corpus_is_dirty_and_covers_every_rule() {
    let report = edea_lint::scan_workspace(&corpus_root()).expect("corpus scans");
    assert!(
        !report.is_clean(),
        "the known-bad corpus must produce findings"
    );

    let fired: BTreeSet<&str> = report.findings.iter().map(|f| f.rule).collect();
    for rule in edea_lint::rules::ALL_RULES {
        assert!(fired.contains(rule), "corpus never exercises rule `{rule}`");
    }
    // Exactly one suppression in the corpus is well-formed and on target.
    assert_eq!(report.suppressions_honored, 1);
}

#[test]
fn corpus_test_code_and_literals_do_not_fire() {
    let report = edea_lint::scan_workspace(&corpus_root()).expect("corpus scans");
    for f in &report.findings {
        assert!(
            !(f.path.ends_with("bad_core.rs") && f.line >= 18),
            "rule fired inside #[cfg(test)] code: {}:{}: {}",
            f.path,
            f.line,
            f.rule
        );
        assert!(
            !(f.path.ends_with("bad_clock.rs") && f.line >= 13),
            "rule fired on a trigger hidden in a comment/string: {}:{}: {}",
            f.path,
            f.line,
            f.rule
        );
        assert!(
            !(f.path.ends_with("bad_fixed.rs") && f.line >= 10),
            "float-in-fixed fired inside an exempt conversion fn: {}:{}",
            f.path,
            f.line
        );
    }
}
