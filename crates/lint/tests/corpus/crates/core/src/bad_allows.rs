//! Known-bad corpus file: suppression hygiene. Never compiled — scanned
//! by the corpus golden test only.

// edea-lint: allow(no-unsafe): this line stopped being unsafe long ago
pub fn stale_suppression_site() {}

pub fn justified(x: Option<u8>) -> u8 {
    // edea-lint: allow(panic-in-lib): corpus demonstrates an honored allow
    x.unwrap()
}

// edea-lint: allow(not-a-rule): rule name does not exist
pub fn unknown_rule_site() {}

pub fn unjustified(y: Option<u8>) -> u8 {
    y.unwrap() // edea-lint: allow(panic-in-lib)
}
