//! Known-bad corpus file: a core library file violating the determinism
//! rules. Never compiled — scanned by the corpus golden test only.

use std::collections::HashMap;
use std::collections::HashSet;

pub fn forks_outside_par() {
    std::thread::spawn(|| {});
    std::thread::scope(|_s| {});
}

pub fn lib_panics(x: Option<u8>) -> u8 {
    let a = x.unwrap();
    let b = x.expect("msg");
    a + b
}

#[cfg(test)]
mod tests {
    // unwrap in test code is sanctioned and must NOT be reported.
    #[test]
    fn unwrap_is_fine_here() {
        let _ = Some(1u8).unwrap();
    }
}
