//! Known-bad corpus file: a residual-add stage in core library code
//! that panics instead of returning `CoreError`. Never compiled —
//! scanned by the corpus golden test only.

pub fn residual_stage(main: &[i32], shortcut: Option<&[i32]>) -> Vec<i32> {
    let shortcut = shortcut.expect("residual layers carry a shortcut");
    main.iter().zip(shortcut).map(|(m, s)| m + s).collect()
}
