// Known-bad: a telemetry sink that stamps events with host time instead
// of recording the caller's simulated tick. This is exactly the defect
// that would break bit-identity across thread counts without failing any
// functional test, so the wall-clock rule carries a telemetry-specific
// message here.

pub struct BadSink;

impl BadSink {
    pub fn record(&self) -> u128 {
        let stamp = std::time::Instant::now();
        let _ = std::time::SystemTime::now();
        stamp.elapsed().as_nanos()
    }
}
