//! Known-bad corpus file: wall clock, unsafe and static mut. Never
//! compiled — scanned by the corpus golden test only.

pub static mut COUNTER: u64 = 0;

pub fn now_ms() -> u128 {
    let _t = std::time::Instant::now();
    let _s = std::time::SystemTime::now();
    unsafe { COUNTER += 1 };
    0
}

pub fn hidden_triggers_stay_hidden() -> (&'static str, &'static str) {
    // Instant::now() in a comment is fine.
    /* so is SystemTime in a block comment */
    let s = "unsafe in a string is fine";
    let r = r#"thread::spawn in a raw "string" is fine"#;
    (s, r)
}
