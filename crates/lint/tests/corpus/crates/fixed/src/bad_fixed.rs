//! Known-bad corpus file: float arithmetic inside fixed-point kernel
//! code. Never compiled — scanned by the corpus golden test only.

pub fn scale(x: i32) -> i32 {
    let f = x as f64 * 0.5f64;
    f as i32
}

/// Sanctioned conversion boundary: fns named `*f64*` are exempt.
pub fn to_f64(x: i32) -> f64 {
    x as f64 / 65536.0
}
