//! Known-bad corpus file: the inverted-residual requantized add done in
//! floating point instead of the Q8.16 integer fold. Never compiled —
//! scanned by the corpus golden test only.

pub fn residual_add(main: i32, shortcut: i32, scale: f32) -> i32 {
    let rescaled = shortcut as f32 * scale;
    main + rescaled as i32
}
