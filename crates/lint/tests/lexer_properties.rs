//! Property tests of the lexer/rule seam: a rule trigger hidden inside
//! any literal or comment form must never fire, a plain trigger fires
//! exactly once with the right rule, a trailing justified allow always
//! suppresses exactly that finding, and line attribution survives
//! arbitrary multiline constructs above the trigger.
//!
//! The vendored proptest has no string strategies, so adversarial
//! sources are assembled from fragment tables indexed by generated
//! integers.

use proptest::prelude::*;

/// (source fragment, rule it must raise) — each fires exactly once when
/// scanned on its own line at `crates/core/src/x.rs`.
const TRIGGERS: &[(&str, &str)] = &[
    (
        "let t = Instant::now();",
        edea_lint::rules::rule::WALL_CLOCK,
    ),
    (
        "let t = SystemTime::now();",
        edea_lint::rules::rule::WALL_CLOCK,
    ),
    (
        "use std::collections::HashMap;",
        edea_lint::rules::rule::UNORDERED,
    ),
    (
        "use std::collections::HashSet;",
        edea_lint::rules::rule::UNORDERED,
    ),
    ("std::thread::spawn(|| {});", edea_lint::rules::rule::THREAD),
    (
        "std::thread::scope(|_s| {});",
        edea_lint::rules::rule::THREAD,
    ),
    ("unsafe { poke() }", edea_lint::rules::rule::UNSAFE),
    ("static mut X: u8 = 0;", edea_lint::rules::rule::STATIC_MUT),
    ("x.unwrap();", edea_lint::rules::rule::PANIC),
    ("x.expect(\"msg\");", edea_lint::rules::rule::PANIC),
];

const CORE_PATH: &str = "crates/core/src/x.rs";

/// Wraps a trigger in a context the compiler would never execute.
fn hide(trigger: &str, hider: usize) -> String {
    match hider {
        0 => format!("// {trigger}\n"),
        1 => format!("/* {trigger} */\n"),
        2 => format!("/// {trigger}\nfn documented() {{}}\n"),
        3 => format!("let s = \"{trigger}\";\n"),
        _ => format!("let s = r#\"{trigger}\"#;\n"),
    }
}

const N_HIDERS: usize = 5;

/// Multiline filler fragments and how many source lines each occupies.
fn filler(idx: usize) -> (&'static str, u32) {
    match idx {
        0 => ("// one comment line\n", 1),
        1 => ("/* a block\ncomment */\n", 2),
        2 => ("let s = \"a string\nwith a newline\";\n", 2),
        _ => ("let r = r#\"raw\nstring\"#;\n", 2),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A trigger inside a comment, doc comment, string or raw string is
    /// invisible to every rule.
    #[test]
    fn hidden_triggers_never_fire(
        trigger in 0..TRIGGERS.len(),
        hider in 0..N_HIDERS,
    ) {
        let src = hide(TRIGGERS[trigger].0, hider);
        let (findings, honored) = edea_lint::scan_source(CORE_PATH, &src);
        prop_assert!(findings.is_empty(), "{src:?} -> {findings:?}");
        prop_assert_eq!(honored, 0);
    }

    /// A plain trigger fires exactly once, with its rule; a trailing
    /// justified allow suppresses exactly that finding.
    #[test]
    fn plain_triggers_fire_once_and_allows_suppress(trigger in 0..TRIGGERS.len()) {
        let (frag, rule) = TRIGGERS[trigger];
        let (findings, honored) = edea_lint::scan_source(CORE_PATH, &format!("{frag}\n"));
        prop_assert_eq!(findings.len(), 1, "{:?}", findings);
        prop_assert_eq!(findings[0].rule, rule);
        prop_assert_eq!(honored, 0);

        let allowed = format!("{frag} // edea-lint: allow({rule}): property fixture\n");
        let (findings, honored) = edea_lint::scan_source(CORE_PATH, &allowed);
        prop_assert!(findings.is_empty(), "{allowed:?} -> {findings:?}");
        prop_assert_eq!(honored, 1);
    }

    /// A random interleaving of hidden and plain triggers yields exactly
    /// the plain ones, as a multiset of rules.
    #[test]
    fn mixed_files_report_exactly_the_plain_triggers(
        picks in proptest::prop::collection::vec((0..TRIGGERS.len(), 0..N_HIDERS + 1), 0..12),
    ) {
        let mut src = String::new();
        let mut expected: Vec<&str> = Vec::new();
        for &(trigger, ctx) in &picks {
            let (frag, rule) = TRIGGERS[trigger];
            if ctx < N_HIDERS {
                src.push_str(&hide(frag, ctx));
            } else {
                src.push_str(frag);
                src.push('\n');
                expected.push(rule);
            }
        }
        let (findings, honored) = edea_lint::scan_source(CORE_PATH, &src);
        let mut got: Vec<&str> = findings.iter().map(|f| f.rule).collect();
        got.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(got, expected, "source:\n{}", src);
        prop_assert_eq!(honored, 0);
    }

    /// Line attribution is exact even when the trigger sits below an
    /// arbitrary stack of multiline comments and literals.
    #[test]
    fn line_numbers_survive_multiline_constructs(
        fillers in proptest::prop::collection::vec(0usize..4, 0..10),
        trigger in 0..TRIGGERS.len(),
    ) {
        let mut src = String::new();
        let mut line = 1u32;
        for &f in &fillers {
            let (frag, lines) = filler(f);
            src.push_str(frag);
            line += lines;
        }
        let (frag, rule) = TRIGGERS[trigger];
        src.push_str(frag);
        src.push('\n');
        let (findings, _) = edea_lint::scan_source(CORE_PATH, &src);
        prop_assert_eq!(findings.len(), 1, "{:?}", &findings);
        prop_assert_eq!(findings[0].rule, rule);
        prop_assert_eq!(findings[0].line, line, "source:\n{}", src);
    }

    /// The float rule is invisible inside literals/comments too, and only
    /// fires under `crates/fixed/src/`.
    #[test]
    fn float_rule_scoping_holds_under_hiding(hider in 0..N_HIDERS) {
        let plain = "let x = 0.5f64;\n";
        let (findings, _) = edea_lint::scan_source("crates/fixed/src/q.rs", plain);
        prop_assert_eq!(findings.len(), 1);
        prop_assert_eq!(findings[0].rule, edea_lint::rules::rule::FLOAT);
        let hidden = hide("let x = 0.5f64;", hider);
        let (findings, _) = edea_lint::scan_source("crates/fixed/src/q.rs", &hidden);
        prop_assert!(findings.is_empty(), "{hidden:?} -> {findings:?}");
        let (findings, _) = edea_lint::scan_source(CORE_PATH, plain);
        prop_assert!(findings.is_empty(), "float rule leaked outside crates/fixed");
    }
}
