//! A minimal Rust lexer: just enough to tell *code* apart from comments
//! and literals, so the rules in [`crate::rules`] never fire on text that
//! the compiler would never execute.
//!
//! The lexer recognizes and skips (as code):
//!
//! * line comments (`//…`, including `///` and `//!` doc comments) — kept
//!   aside as [`Comment`]s so suppression directives can be parsed;
//! * block comments (`/* … */`), **nested**, as Rust defines them;
//! * string literals (`"…"` with `\"`/`\\` escapes) and byte strings;
//! * raw strings (`r"…"`, `r#"…"#`, … with any hash count, and `br…`);
//! * char and byte-char literals (`'x'`, `'\n'`, `b'\xFF'`), carefully
//!   distinguished from lifetimes (`'a`, `'static`) so a lifetime name is
//!   *not* reported as an identifier (`&'static mut T` must not look like
//!   `static mut`).
//!
//! Everything else becomes a flat [`Token`] stream: identifiers, number
//! literals (with their type suffix, so `1.0f64` is visible to the
//! float rule), and punctuation (with `::` fused, the only multi-char
//! operator the rules need).

/// What a token is, as far as the rules care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword.
    Ident,
    /// A number literal, suffix included (`1.0f64`, `0x_ffu8`).
    Number,
    /// Punctuation; `::` is a single token, everything else one char.
    Punct,
    /// A lifetime (`'a`, `'static`) — never matched by any rule.
    Lifetime,
}

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token text.
    pub text: String,
    /// The kind.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
}

/// One comment, with delimiters stripped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// The comment body (without `//`, `/*`, `*/`).
    pub text: String,
    /// 1-based line the comment *starts* on.
    pub line: u32,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens, in source order.
    pub tokens: Vec<Token>,
    /// Comments, in source order.
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// Whether any code token lies on `line`.
    #[must_use]
    pub fn has_code_on(&self, line: u32) -> bool {
        // Tokens are in line order; a binary search would work, but files
        // are small and this is called once per directive.
        self.tokens.iter().any(|t| t.line == line)
    }

    /// The first code line at or after `line`, if any.
    #[must_use]
    pub fn first_code_line_at_or_after(&self, line: u32) -> Option<u32> {
        self.tokens.iter().map(|t| t.line).find(|&l| l >= line)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Lexes `src`. Unterminated literals or comments are tolerated (the rest
/// of the file is simply swallowed by the open construct, exactly as an
/// editor would highlight it) — the linter runs on code `rustc` already
/// accepted, so this path only matters for robustness on garbage input.
#[must_use]
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    // Reads a `"…"` body starting *after* the opening quote; returns the
    // index after the closing quote, counting newlines into `line`.
    fn skip_string(b: &[char], mut i: usize, line: &mut u32) -> usize {
        while i < b.len() {
            match b[i] {
                '\\' => {
                    // Escape pair; a `\<newline>` continuation still
                    // advances the line counter.
                    if b.get(i + 1) == Some(&'\n') {
                        *line += 1;
                    }
                    i += 2.min(b.len() - i);
                }
                '"' => return i + 1,
                c => {
                    if c == '\n' {
                        *line += 1;
                    }
                    i += 1;
                }
            }
        }
        i
    }

    // Raw string at `i` (pointing at `r`), optionally after a `b` already
    // consumed by the caller: `r#*"…"#*`. Returns Some(end) if it really
    // is one.
    fn skip_raw_string(b: &[char], i: usize, line: &mut u32) -> Option<usize> {
        let mut j = i + 1; // past 'r'
        let mut hashes = 0usize;
        while j < b.len() && b[j] == '#' {
            hashes += 1;
            j += 1;
        }
        if j >= b.len() || b[j] != '"' {
            return None;
        }
        j += 1;
        while j < b.len() {
            if b[j] == '\n' {
                *line += 1;
            }
            if b[j] == '"'
                && b[j + 1..]
                    .iter()
                    .take(hashes)
                    .filter(|&&c| c == '#')
                    .count()
                    == hashes
            {
                return Some(j + 1 + hashes);
            }
            j += 1;
        }
        Some(j)
    }

    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < b.len() && b[i + 1] == '/' => {
                let start = i + 2;
                let mut j = start;
                while j < b.len() && b[j] != '\n' {
                    j += 1;
                }
                out.comments.push(Comment {
                    text: b[start..j].iter().collect(),
                    line,
                });
                i = j;
            }
            '/' if i + 1 < b.len() && b[i + 1] == '*' => {
                let start_line = line;
                let start = i + 2;
                let mut depth = 1usize;
                let mut j = start;
                while j < b.len() && depth > 0 {
                    if b[j] == '\n' {
                        line += 1;
                        j += 1;
                    } else if b[j] == '/' && j + 1 < b.len() && b[j + 1] == '*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == '*' && j + 1 < b.len() && b[j + 1] == '/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let end = if depth == 0 { j - 2 } else { j };
                out.comments.push(Comment {
                    text: b[start..end].iter().collect(),
                    line: start_line,
                });
                i = j;
            }
            '"' => i = skip_string(&b, i + 1, &mut line),
            '\'' => {
                // Char literal or lifetime?
                let next = b.get(i + 1).copied();
                match next {
                    Some('\\') => {
                        // Escaped char literal: `\X` pairs never close the
                        // literal, the first bare quote does.
                        let mut j = i + 1;
                        while j < b.len() {
                            if b[j] == '\\' {
                                j += 2;
                            } else if b[j] == '\'' {
                                j += 1;
                                break;
                            } else {
                                j += 1;
                            }
                        }
                        i = j.min(b.len());
                    }
                    Some(n) if is_ident_continue(n) && b.get(i + 2) == Some(&'\'') => {
                        // One-char literal like 'x' or '_'.
                        i += 3;
                    }
                    Some(n) if is_ident_start(n) => {
                        // A lifetime: consume 'name as one non-ident token.
                        let mut j = i + 1;
                        while j < b.len() && is_ident_continue(b[j]) {
                            j += 1;
                        }
                        out.tokens.push(Token {
                            text: b[i..j].iter().collect(),
                            kind: TokenKind::Lifetime,
                            line,
                        });
                        i = j;
                    }
                    Some(_) => {
                        // Non-alphanumeric char literal like '(' or '"'.
                        let mut j = i + 1;
                        while j < b.len() && b[j] != '\'' {
                            if b[j] == '\n' {
                                line += 1;
                            }
                            j += 1;
                        }
                        i = (j + 1).min(b.len());
                    }
                    None => i += 1,
                }
            }
            c if is_ident_start(c) => {
                // Raw-/byte-string prefixes first: r"…", r#"…"#, b"…",
                // br"…", b'…'.
                if c == 'r' || c == 'b' {
                    let after_b = if c == 'b' && b.get(i + 1) == Some(&'r') {
                        i + 1
                    } else {
                        i
                    };
                    if b[after_b] == 'r' {
                        if let Some(end) = skip_raw_string(&b, after_b, &mut line) {
                            i = end;
                            continue;
                        }
                    }
                    if c == 'b' && b.get(i + 1) == Some(&'"') {
                        i = skip_string(&b, i + 2, &mut line);
                        continue;
                    }
                    if c == 'b' && b.get(i + 1) == Some(&'\'') {
                        // Byte-char literal, same escape rules as chars.
                        let mut j = i + 2;
                        while j < b.len() {
                            if b[j] == '\\' {
                                j += 2;
                            } else if b[j] == '\'' {
                                j += 1;
                                break;
                            } else {
                                j += 1;
                            }
                        }
                        i = j.min(b.len());
                        continue;
                    }
                }
                let mut j = i + 1;
                while j < b.len() && is_ident_continue(b[j]) {
                    j += 1;
                }
                out.tokens.push(Token {
                    text: b[i..j].iter().collect(),
                    kind: TokenKind::Ident,
                    line,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                // Number literal with suffix; `1.0f64` stays one token so
                // the float rule sees the suffix. A `.` is part of the
                // number only when followed by a digit (so `0..n` and
                // `1.max(x)` keep their dots as punctuation).
                let mut j = i + 1;
                while j < b.len()
                    && (is_ident_continue(b[j])
                        || (b[j] == '.'
                            && b.get(j + 1).is_some_and(|c| c.is_ascii_digit())
                            && !b[i..j].contains(&'.')))
                {
                    j += 1;
                }
                out.tokens.push(Token {
                    text: b[i..j].iter().collect(),
                    kind: TokenKind::Number,
                    line,
                });
                i = j;
            }
            ':' if b.get(i + 1) == Some(&':') => {
                out.tokens.push(Token {
                    text: "::".into(),
                    kind: TokenKind::Punct,
                    line,
                });
                i += 2;
            }
            _ => {
                out.tokens.push(Token {
                    text: c.to_string(),
                    kind: TokenKind::Punct,
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_their_contents() {
        let src = r##"
            // Instant::now() in a line comment
            /* SystemTime in a block /* nested Instant */ comment */
            let s = "Instant::now() in a string";
            let r = r#"HashMap in a raw "string" body"#;
            let c = 'I';
            real_ident();
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "Instant" || i == "SystemTime"));
        assert!(!ids.iter().any(|i| i == "HashMap"));
        assert!(ids.contains(&"real_ident".to_string()));
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("Instant::now"));
    }

    #[test]
    fn escapes_do_not_break_out_of_strings() {
        let src = r#"let s = "escaped \" quote Instant"; after();"#;
        let ids = idents(src);
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(ids.contains(&"after".to_string()));
    }

    #[test]
    fn lifetimes_are_not_identifiers() {
        let src = "fn f<'a>(x: &'static mut u8) -> &'a u8 { x }";
        let lexed = lex(src);
        // `static` appears only inside the lifetime token, never as Ident.
        assert!(!lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == "static"));
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "'static"));
    }

    #[test]
    fn char_literals_close_correctly() {
        for src in [
            "let c = 'x'; tail()",
            r"let c = '\n'; tail()",
            "let c = '\\''; tail()",
        ] {
            assert!(idents(src).contains(&"tail".to_string()), "{src}");
        }
    }

    #[test]
    fn raw_strings_with_hashes_close_on_matching_hash_count() {
        let src = r###"let s = r##"quote "# inside Instant"##; tail();"###;
        let ids = idents(src);
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(ids.contains(&"tail".to_string()));
    }

    #[test]
    fn number_suffixes_stay_attached() {
        let lexed = lex("let x = 1.0f64 + 2f32; let r = 0..n; v.1.max(y)");
        let nums: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| t.text.as_str())
            .collect();
        assert!(nums.contains(&"1.0f64"));
        assert!(nums.contains(&"2f32"));
        assert!(nums.contains(&"0"));
        // Range dots and method calls keep their punctuation.
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == "max"));
    }

    #[test]
    fn double_colon_is_one_token() {
        let toks = lex("std::thread::spawn");
        let texts: Vec<_> = toks.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["std", "::", "thread", "::", "spawn"]);
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let src = "a\n\"two\nline string\"\nb /* c\nd */ e";
        let lexed = lex(src);
        let find = |name: &str| lexed.tokens.iter().find(|t| t.text == name).unwrap().line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 4);
        assert_eq!(find("e"), 5);
    }
}
