//! The `edea-lint` binary: scans the workspace, prints the report, exits
//! nonzero on findings. `--root <dir>` overrides the scan root (default:
//! the workspace root containing this crate).

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // crates/lint/ -> workspace root, robust to the invocation directory.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(std::path::Path::parent)
        .map_or(manifest.clone(), std::path::Path::to_path_buf)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root = workspace_root();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("edea-lint: --root requires a directory");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!(
                    "edea-lint: unknown argument `{other}` (usage: edea-lint [--root <dir>])"
                );
                return ExitCode::from(2);
            }
        }
    }
    match edea_lint::scan_workspace(&root) {
        Ok(report) => {
            print!("{}", report.render());
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("edea-lint: scan failed: {e}");
            ExitCode::from(2)
        }
    }
}
