//! The named rules and the suppression machinery.
//!
//! Each rule is a token-level pattern scoped to a region of the workspace
//! (see `ARCHITECTURE.md` § Static analysis for what contract each rule
//! enforces). A finding can be suppressed at its site with
//!
//! ```text
//! // edea-lint: allow(<rule>): <reason>
//! ```
//!
//! either trailing on the offending line or standalone on the line(s)
//! directly above (a standalone directive applies to the next line that
//! carries code). The reason is mandatory — an allow without a written
//! justification does not count. A directive that suppresses nothing is
//! itself reported as `stale-allow`, so suppressions cannot outlive the
//! code they were written for.

use crate::lexer::{Lexed, Token, TokenKind};

/// The rule names, as they appear in reports and `allow(...)` directives.
pub mod rule {
    /// `Instant::now`/`SystemTime` anywhere in the simulator workspace.
    pub const WALL_CLOCK: &str = "wall-clock-in-sim";
    /// `HashMap`/`HashSet` in the deterministic crates.
    pub const UNORDERED: &str = "unordered-iteration";
    /// `thread::spawn`/`thread::scope` outside `core/src/par.rs`.
    pub const THREAD: &str = "thread-outside-par";
    /// `unsafe` outside the sanctioned testutil allocator.
    pub const UNSAFE: &str = "no-unsafe";
    /// `static mut` anywhere.
    pub const STATIC_MUT: &str = "no-static-mut";
    /// `f32`/`f64` inside `crates/fixed` kernel code.
    pub const FLOAT: &str = "float-in-fixed";
    /// `.unwrap()`/`.expect()` in `core`/`edea` library code.
    pub const PANIC: &str = "panic-in-lib";
    /// A suppression that no longer suppresses anything.
    pub const STALE: &str = "stale-allow";
}

/// Every rule name, for directive validation and docs.
pub const ALL_RULES: [&str; 8] = [
    rule::WALL_CLOCK,
    rule::UNORDERED,
    rule::THREAD,
    rule::UNSAFE,
    rule::STATIC_MUT,
    rule::FLOAT,
    rule::PANIC,
    rule::STALE,
];

/// One finding within one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// 1-based line.
    pub line: u32,
    /// The rule that fired.
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

/// Per-token region flags, computed in one pass over the token stream.
#[derive(Debug, Clone, Copy, Default)]
struct Flags {
    /// Inside the body of a `#[cfg(test)]`-gated item.
    in_test: bool,
    /// Inside the body of a function whose name contains `f32`/`f64` —
    /// the sanctioned fixed-point conversion boundary.
    in_float_fn: bool,
}

/// Computes [`Flags`] for every token: brace-depth tracking finds the
/// bodies of `#[cfg(test)]` items and of `*f32*`/`*f64*`-named functions.
fn token_flags(tokens: &[Token]) -> Vec<Flags> {
    let mut flags = vec![Flags::default(); tokens.len()];
    let mut depth = 0usize;
    let mut test_depths: Vec<usize> = Vec::new();
    let mut float_depths: Vec<usize> = Vec::new();
    let mut pending_test = false;
    let mut pending_float = false;
    let mut i = 0usize;
    while i < tokens.len() {
        // A pending attribute/fn already covers the tokens between the
        // marker and the body brace (the item header and signature — a
        // conversion fn's own `f64` parameter types are sanctioned).
        flags[i] = Flags {
            in_test: !test_depths.is_empty() || pending_test,
            in_float_fn: !float_depths.is_empty() || pending_float,
        };
        let text = tokens[i].text.as_str();
        // An attribute: scan it whole so its brackets/braces don't disturb
        // the depth counter, and look for `cfg(test)`.
        if text == "#" {
            let mut j = i + 1;
            if tokens.get(j).map(|t| t.text.as_str()) == Some("!") {
                j += 1; // inner attribute `#![…]`
            }
            if tokens.get(j).map(|t| t.text.as_str()) == Some("[") {
                let mut brackets = 0usize;
                let mut saw_cfg = false;
                let mut saw_test = false;
                while j < tokens.len() {
                    flags[j] = flags[i];
                    match tokens[j].text.as_str() {
                        "[" => brackets += 1,
                        "]" => {
                            brackets -= 1;
                            if brackets == 0 {
                                break;
                            }
                        }
                        "cfg" => saw_cfg = true,
                        "test" => saw_test = true,
                        _ => {}
                    }
                    j += 1;
                }
                if saw_cfg && saw_test {
                    pending_test = true;
                }
                i = j + 1;
                continue;
            }
        }
        match text {
            "fn" => {
                if let Some(name) = tokens.get(i + 1) {
                    if name.kind == TokenKind::Ident
                        && (name.text.contains("f32") || name.text.contains("f64"))
                    {
                        pending_float = true;
                    }
                }
            }
            "{" => {
                depth += 1;
                if pending_test {
                    test_depths.push(depth);
                    pending_test = false;
                }
                if pending_float {
                    float_depths.push(depth);
                    pending_float = false;
                }
            }
            "}" => {
                if test_depths.last() == Some(&depth) {
                    test_depths.pop();
                }
                if float_depths.last() == Some(&depth) {
                    float_depths.pop();
                }
                depth = depth.saturating_sub(1);
            }
            ";" => {
                // An item ended without a body (`mod tests;`, trait method
                // declarations): a pending attribute/fn no longer applies.
                pending_test = false;
                pending_float = false;
            }
            _ => {}
        }
        i += 1;
    }
    flags
}

/// Where a file sits in the workspace, for rule scoping. Paths are
/// workspace-relative with `/` separators.
#[derive(Debug, Clone, Copy)]
struct Scope<'a> {
    rel: &'a str,
}

impl Scope<'_> {
    fn in_any(&self, prefixes: &[&str]) -> bool {
        prefixes.iter().any(|p| self.rel.starts_with(p))
    }

    /// The crates whose iteration order is load-bearing.
    fn deterministic_crate(&self) -> bool {
        self.in_any(&[
            "crates/core/",
            "crates/nn/",
            "crates/tensor/",
            "crates/fixed/",
        ])
    }

    /// Library code that must return `CoreError` instead of panicking.
    fn panic_checked(&self) -> bool {
        self.in_any(&["crates/core/src/", "crates/edea/src/"])
    }

    /// Fixed-point kernel code (integer arithmetic only).
    fn fixed_kernel(&self) -> bool {
        self.rel.starts_with("crates/fixed/src/")
    }

    /// The one sanctioned `std::thread` call site.
    fn is_par_module(&self) -> bool {
        self.rel == "crates/core/src/par.rs"
    }

    /// The one sanctioned `unsafe` block (the counting `GlobalAlloc`).
    fn is_counting_allocator(&self) -> bool {
        self.rel == "crates/testutil/src/alloc.rs"
    }

    /// The telemetry subsystem: every event timestamp is a simulated
    /// tick handed in by the caller, so a wall-clock source here would
    /// silently break the bit-identity contract across thread counts.
    fn telemetry_module(&self) -> bool {
        self.rel.contains("/src/telemetry/") || self.rel.ends_with("/src/telemetry.rs")
    }
}

fn ident(t: &Token, text: &str) -> bool {
    t.kind == TokenKind::Ident && t.text == text
}

/// Runs every rule over one lexed file. Returned findings are raw —
/// suppressions are applied by [`apply_suppressions`].
#[must_use]
pub fn check(rel_path: &str, lexed: &Lexed) -> Vec<Finding> {
    let scope = Scope { rel: rel_path };
    let tokens = &lexed.tokens;
    let flags = token_flags(tokens);
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        let fl = flags[i];
        let next = |k: usize| tokens.get(i + k);

        // wall-clock-in-sim: everywhere — simulated time comes from the
        // simulated clock, and even benches must justify wall-clock use.
        // The telemetry module gets a sharper message: a sink that
        // stamps events itself (instead of recording the caller's tick)
        // would break bit-identity across thread counts undetectably.
        if t.kind == TokenKind::Ident && (t.text == "Instant" || t.text == "SystemTime") {
            let message = if scope.telemetry_module() {
                format!(
                    "wall-clock source `{}` in telemetry; event timestamps must be the caller's simulated tick, never host time",
                    t.text
                )
            } else {
                format!(
                    "wall-clock source `{}`; simulation time must come from the simulated clock",
                    t.text
                )
            };
            out.push(Finding {
                line: t.line,
                rule: rule::WALL_CLOCK,
                message,
            });
        }

        // unordered-iteration: the deterministic crates, tests included
        // (iteration-order nondeterminism turns tests flaky).
        if scope.deterministic_crate()
            && t.kind == TokenKind::Ident
            && (t.text == "HashMap" || t.text == "HashSet")
        {
            out.push(Finding {
                line: t.line,
                rule: rule::UNORDERED,
                message: format!(
                    "`{}` has nondeterministic iteration order; use BTreeMap/BTreeSet or sorted access",
                    t.text
                ),
            });
        }

        // thread-outside-par: all forking goes through par::map_lanes.
        if !scope.is_par_module()
            && ident(t, "thread")
            && next(1).is_some_and(|n| n.text == "::")
            && next(2).is_some_and(|n| ident(n, "spawn") || ident(n, "scope"))
        {
            out.push(Finding {
                line: t.line,
                rule: rule::THREAD,
                message: format!(
                    "`thread::{}` outside core/src/par.rs; fork through par::map_lanes",
                    tokens[i + 2].text
                ),
            });
        }

        // no-unsafe: the workspace is forbid(unsafe_code) by policy; the
        // counting allocator is the single sanctioned exception.
        if !scope.is_counting_allocator() && ident(t, "unsafe") {
            out.push(Finding {
                line: t.line,
                rule: rule::UNSAFE,
                message: "`unsafe` outside the sanctioned testutil counting allocator".into(),
            });
        }

        // no-static-mut: everywhere (the lexer keeps `'static` lifetimes
        // out of the identifier stream, so `&'static mut T` is fine).
        if ident(t, "static") && next(1).is_some_and(|n| ident(n, "mut")) {
            out.push(Finding {
                line: t.line,
                rule: rule::STATIC_MUT,
                message: "`static mut` is unsynchronized shared state".into(),
            });
        }

        // float-in-fixed: fixed-point kernel code computes in integers
        // only; conversion boundaries live in fns named `*f32*`/`*f64*`.
        if scope.fixed_kernel() && !fl.in_test && !fl.in_float_fn {
            let is_float = (t.kind == TokenKind::Ident && (t.text == "f32" || t.text == "f64"))
                || (t.kind == TokenKind::Number
                    && (t.text.ends_with("f32") || t.text.ends_with("f64")));
            if is_float {
                out.push(Finding {
                    line: t.line,
                    rule: rule::FLOAT,
                    message: format!(
                        "`{}` in fixed-point kernel code; arithmetic must stay integer (Q8.16)",
                        t.text
                    ),
                });
            }
        }

        // panic-in-lib: library code returns CoreError; every remaining
        // unwrap/expect needs a written unreachability argument.
        if scope.panic_checked()
            && !fl.in_test
            && t.text == "."
            && next(1).is_some_and(|n| ident(n, "unwrap") || ident(n, "expect"))
            && next(2).is_some_and(|n| n.text == "(")
        {
            out.push(Finding {
                line: tokens[i + 1].line,
                rule: rule::PANIC,
                message: format!(
                    "`.{}()` in library code; return a CoreError or justify unreachability",
                    tokens[i + 1].text
                ),
            });
        }
    }
    out
}

/// One parsed `edea-lint: allow(...)` directive.
#[derive(Debug)]
struct Directive {
    rule: String,
    /// The line the directive suppresses findings on.
    target: Option<u32>,
    /// Line the directive itself sits on (for stale-allow reports).
    line: u32,
    /// Why this directive cannot suppress anything, if malformed.
    defect: Option<&'static str>,
    used: bool,
}

/// Parses suppression directives out of a file's comments.
fn directives(lexed: &Lexed) -> Vec<Directive> {
    let mut out = Vec::new();
    for c in &lexed.comments {
        // A directive comment *starts* with the marker (so prose or doc
        // examples that merely mention the syntax are not directives).
        let Some(rest) = c.text.trim_start().strip_prefix("edea-lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let mut d = Directive {
            rule: String::new(),
            target: None,
            line: c.line,
            defect: None,
            used: false,
        };
        let body = match rest.strip_prefix("allow(") {
            Some(b) => b,
            None => {
                d.defect = Some("directive is not of the form `allow(<rule>): <reason>`");
                out.push(d);
                continue;
            }
        };
        let Some(close) = body.find(')') else {
            d.defect = Some("directive is not of the form `allow(<rule>): <reason>`");
            out.push(d);
            continue;
        };
        d.rule = body[..close].trim().to_string();
        if !ALL_RULES.contains(&d.rule.as_str()) {
            d.defect = Some("directive names an unknown rule");
            out.push(d);
            continue;
        }
        let reason = body[close + 1..].trim_start().strip_prefix(':');
        match reason {
            Some(r) if !r.trim().is_empty() => {}
            _ => {
                d.defect = Some("directive carries no written justification");
                out.push(d);
                continue;
            }
        }
        // Trailing directives cover their own line; standalone directives
        // cover the next line that carries code.
        d.target = if lexed.has_code_on(c.line) {
            Some(c.line)
        } else {
            lexed.first_code_line_at_or_after(c.line + 1)
        };
        out.push(d);
    }
    out
}

/// Applies suppression directives to `findings`: suppressed findings are
/// removed, and every directive that suppressed nothing (stale or
/// malformed) becomes a [`rule::STALE`] finding. Returns the surviving
/// findings and the number of suppressions honored.
#[must_use]
pub fn apply_suppressions(lexed: &Lexed, findings: Vec<Finding>) -> (Vec<Finding>, usize) {
    let mut dirs = directives(lexed);
    let mut honored = 0usize;
    let mut out = Vec::new();
    for f in findings {
        let hit = dirs
            .iter_mut()
            .find(|d| d.defect.is_none() && d.rule == f.rule && d.target == Some(f.line));
        match hit {
            Some(d) => {
                d.used = true;
                honored += 1;
            }
            None => out.push(f),
        }
    }
    for d in &dirs {
        if let Some(defect) = d.defect {
            out.push(Finding {
                line: d.line,
                rule: rule::STALE,
                message: defect.to_string(),
            });
        } else if !d.used {
            out.push(Finding {
                line: d.line,
                rule: rule::STALE,
                message: format!(
                    "suppression for `{}` no longer matches a finding on line {}",
                    d.rule,
                    d.target
                        .map_or_else(|| d.line.to_string(), |t| t.to_string()),
                ),
            });
        }
    }
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    (out, honored)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(rel: &str, src: &str) -> Vec<Finding> {
        let lexed = lex(src);
        let (findings, _) = apply_suppressions(&lexed, check(rel, &lexed));
        findings
    }

    #[test]
    fn wall_clock_fires_everywhere_but_not_in_literals() {
        let f = run("crates/bench/src/x.rs", "let t = Instant::now();");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, rule::WALL_CLOCK);
        assert!(run("crates/bench/src/x.rs", "let s = \"Instant\"; // Instant").is_empty());
    }

    #[test]
    fn wall_clock_in_telemetry_gets_the_sim_tick_message() {
        let f = run(
            "crates/core/src/telemetry/sink.rs",
            "let t = Instant::now();",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, rule::WALL_CLOCK);
        assert!(
            f[0].message.contains("caller's simulated tick"),
            "telemetry scope should specialize the message: {}",
            f[0].message
        );
        // Outside the telemetry module the generic wording applies.
        let f = run("crates/core/src/serve.rs", "let t = Instant::now();");
        assert!(f[0].message.contains("simulated clock"), "{}", f[0].message);
    }

    #[test]
    fn unordered_is_scoped_to_deterministic_crates() {
        let src = "use std::collections::HashMap;";
        assert_eq!(run("crates/core/src/x.rs", src).len(), 1);
        assert_eq!(run("crates/fixed/tests/t.rs", src).len(), 1);
        assert!(run("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn thread_rule_exempts_par_module() {
        let src = "std::thread::scope(|s| s.spawn(|| {}));";
        assert!(run("crates/core/src/par.rs", src).is_empty());
        let f = run("crates/core/src/pool.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, rule::THREAD);
    }

    #[test]
    fn unsafe_and_static_mut_fire_with_allocator_exempt() {
        let src = "static mut X: u8 = 0; unsafe { X = 1 }";
        let f = run("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 2);
        let f = run("crates/testutil/src/alloc.rs", src);
        // The allocator may be unsafe but still must not use static mut.
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, rule::STATIC_MUT);
        // A 'static lifetime next to mut is not a static mut.
        assert!(run("crates/core/src/x.rs", "fn f(x: &'static mut u8) {}").is_empty());
    }

    #[test]
    fn float_rule_spares_conversion_fns_and_tests() {
        let body = "pub fn quantize(x: f64) -> i32 { (x * 65536.0f64) as i32 }";
        let f = run("crates/fixed/src/q.rs", body);
        assert_eq!(f.len(), 2, "{f:?}"); // the `f64` type and the suffixed literal
        let conv = "pub fn from_f64(x: f64) -> i32 { (x * 65536.0) as i32 }";
        assert!(run("crates/fixed/src/q.rs", conv).is_empty());
        let test = "#[cfg(test)] mod tests { fn t(x: f64) {} }";
        assert!(run("crates/fixed/src/q.rs", test).is_empty());
        assert!(
            run("crates/nn/src/q.rs", body).is_empty(),
            "only crates/fixed"
        );
    }

    #[test]
    fn panic_rule_sees_lib_code_only() {
        let src = "fn f() { x.unwrap(); y.expect(\"msg\"); }";
        assert_eq!(run("crates/core/src/x.rs", src).len(), 2);
        assert!(run("crates/core/tests/t.rs", src).is_empty());
        assert!(run("crates/tensor/src/x.rs", src).is_empty());
        let test_mod = "#[cfg(test)] mod tests { fn f() { x.unwrap(); } }";
        assert!(run("crates/core/src/x.rs", test_mod).is_empty());
    }

    #[test]
    fn trailing_and_standalone_suppressions_work() {
        let trailing =
            "let t = Instant::now(); // edea-lint: allow(wall-clock-in-sim): bench measures the host\n";
        assert!(run("crates/bench/src/x.rs", trailing).is_empty());
        let standalone = "// edea-lint: allow(wall-clock-in-sim): bench measures the host\nlet t = Instant::now();\n";
        assert!(run("crates/bench/src/x.rs", standalone).is_empty());
    }

    #[test]
    fn stale_and_malformed_directives_are_findings() {
        let stale = "// edea-lint: allow(no-unsafe): nothing unsafe here\nlet x = 1;\n";
        let f = run("crates/core/src/x.rs", stale);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, rule::STALE);
        let unjustified = "let t = Instant::now(); // edea-lint: allow(wall-clock-in-sim)\n";
        let f = run("crates/bench/src/x.rs", unjustified);
        // The directive is malformed (no reason), so the original finding
        // survives alongside the stale-allow report.
        assert_eq!(f.len(), 2, "{f:?}");
        let unknown = "// edea-lint: allow(no-such-rule): whatever\nlet x = 1;\n";
        let f = run("crates/core/src/x.rs", unknown);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, rule::STALE);
    }

    #[test]
    fn suppression_only_covers_its_own_rule_and_line() {
        let src = "\
// edea-lint: allow(no-unsafe): needed for the test fixture
unsafe { x() }
unsafe { y() }
";
        let f = run("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3);
    }
}
