//! `edea-lint`: the workspace's hand-rolled static-analysis pass.
//!
//! PR 7's parallel layer rests on a determinism contract (static
//! partition / one writer per element / fixed-order reduction), and the
//! hot path on a set of hygiene rules (no wall clock in the simulation,
//! no unordered iteration, no floats in the fixed-point kernels, no
//! panics in library code). Tests observe violations after the fact; this
//! crate rejects them at the source level, the same way the paper's
//! schedule makes buffer conflicts impossible by construction rather than
//! detected at runtime.
//!
//! The scanner is std-only (the workspace builds offline): a small lexer
//! ([`lexer`]) strips comments and string/char/raw-string literals so
//! rules never fire on text the compiler would not execute, and the rule
//! pass ([`rules`]) matches token patterns scoped by workspace path.
//! Suppressions are per-site and must carry a written justification:
//!
//! ```text
//! // edea-lint: allow(<rule>): <reason>
//! ```
//!
//! A suppression that no longer suppresses anything is itself an error
//! (`stale-allow`), so the allow-list can only shrink as code improves.
//!
//! Run `cargo run -p edea-lint` from the workspace root; the binary exits
//! nonzero on findings and is a gating CI job.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod rules;

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One finding, workspace-relative.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name.
    pub rule: &'static str,
    /// Description.
    pub message: String,
}

/// The result of scanning a tree.
#[derive(Debug, Default)]
pub struct Report {
    /// All surviving findings, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of justified suppressions that matched a finding.
    pub suppressions_honored: usize,
}

impl Report {
    /// Whether the scan found nothing.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the stable machine-readable report: one
    /// `path:line: rule: message` line per finding plus a trailing
    /// summary line.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "{}:{}: {}: {}", f.path, f.line, f.rule, f.message);
        }
        let _ = writeln!(
            out,
            "edea-lint: {} finding(s) in {} file(s) scanned, {} suppression(s) honored",
            self.findings.len(),
            self.files_scanned,
            self.suppressions_honored
        );
        out
    }
}

/// Lints one file's source under its workspace-relative path. Exposed for
/// the property and corpus tests.
#[must_use]
pub fn scan_source(rel_path: &str, src: &str) -> (Vec<rules::Finding>, usize) {
    let lexed = lexer::lex(src);
    rules::apply_suppressions(&lexed, rules::check(rel_path, &lexed))
}

/// Whether a directory entry should be descended into / scanned.
fn skip_dir(name: &str, parent_name: Option<&str>) -> bool {
    name == "vendor"
        || name == "target"
        || name.starts_with('.')
        // The linter's own known-bad test corpus is exempt by design.
        || (name == "corpus" && parent_name == Some("tests"))
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(std::fs::DirEntry::file_name);
    let parent_name = dir.file_name().and_then(|n| n.to_str()).map(str::to_owned);
    for e in entries {
        let path = e.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if path.is_dir() {
            if !skip_dir(name, parent_name.as_deref()) {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scans every `.rs` file under `root` (excluding `vendor/`, `target/`,
/// hidden directories and the linter's own `tests/corpus/`) and returns
/// the aggregate report, deterministically ordered.
///
/// # Errors
///
/// Propagates I/O errors from walking or reading the tree.
pub fn scan_workspace(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();
    let mut report = Report::default();
    for path in &files {
        let src = fs::read_to_string(path)?;
        let rel: String = path
            .strip_prefix(root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let (findings, honored) = scan_source(&rel, &src);
        report.suppressions_honored += honored;
        report.files_scanned += 1;
        report
            .findings
            .extend(findings.into_iter().map(|f| Finding {
                path: rel.clone(),
                line: f.line,
                rule: f.rule,
                message: f.message,
            }));
    }
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_stably() {
        let r = Report {
            findings: vec![Finding {
                path: "crates/x/src/a.rs".into(),
                line: 3,
                rule: rules::rule::UNSAFE,
                message: "msg".into(),
            }],
            files_scanned: 2,
            suppressions_honored: 1,
        };
        assert_eq!(
            r.render(),
            "crates/x/src/a.rs:3: no-unsafe: msg\n\
             edea-lint: 1 finding(s) in 2 file(s) scanned, 1 suppression(s) honored\n"
        );
        assert!(!r.is_clean());
    }

    #[test]
    fn dir_skipping_covers_vendor_target_hidden_and_corpus() {
        assert!(skip_dir("vendor", None));
        assert!(skip_dir("target", Some("repo")));
        assert!(skip_dir(".git", None));
        assert!(skip_dir("corpus", Some("tests")));
        assert!(!skip_dir("corpus", Some("src")));
        assert!(!skip_dir("crates", None));
    }
}
