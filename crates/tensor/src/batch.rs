//! A batch of uniformly-shaped feature maps.
//!
//! EDEA's external-traffic argument extends across a *batch* of images:
//! weight tiles fetched from DRAM once can serve every image in the batch.
//! [`Batch`] is the container that carries such a batch through the golden
//! executor (`edea-nn`) and the batched accelerator schedule (`edea-core`):
//! a non-empty collection of [`Tensor3`]s whose shapes are checked to be
//! identical at construction, so every downstream consumer can iterate
//! images without re-validating.

use crate::{Tensor3, TensorError};

/// A non-empty batch of `C×H×W` feature maps with identical shapes.
///
/// # Example
///
/// ```
/// use edea_tensor::{Batch, Tensor3};
///
/// let batch = Batch::from_fn(3, |i| {
///     Tensor3::<i8>::from_fn(2, 4, 4, |c, h, w| (i + c + h + w) as i8)
/// }).unwrap();
/// assert_eq!(batch.len(), 3);
/// assert_eq!(batch.shape(), (2, 4, 4));
/// assert_eq!(batch[2][(0, 0, 0)], 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Batch<T> {
    images: Vec<Tensor3<T>>,
}

impl<T> Batch<T> {
    /// Wraps a non-empty vector of identically-shaped images.
    ///
    /// # Errors
    ///
    /// [`TensorError::EmptyDimension`] for an empty vector;
    /// [`TensorError::ShapeMismatch`] if any image's shape differs from the
    /// first one's.
    pub fn new(images: Vec<Tensor3<T>>) -> Result<Self, TensorError> {
        let Some(first) = images.first() else {
            return Err(TensorError::EmptyDimension);
        };
        let shape = first.shape();
        for (i, img) in images.iter().enumerate() {
            if img.shape() != shape {
                return Err(TensorError::ShapeMismatch {
                    detail: format!(
                        "batch image {i} has shape {:?}, expected {shape:?}",
                        img.shape()
                    ),
                });
            }
        }
        Ok(Self { images })
    }

    /// Number of images in the batch (`N ≥ 1`).
    #[must_use]
    #[allow(clippy::len_without_is_empty)] // a Batch is non-empty by construction
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Shape `(C, H, W)` shared by every image.
    #[must_use]
    pub fn shape(&self) -> (usize, usize, usize) {
        self.images[0].shape()
    }

    /// The images as a slice, for APIs that take `&[Tensor3<T>]`.
    #[must_use]
    pub fn images(&self) -> &[Tensor3<T>] {
        &self.images
    }

    /// Iterates over the images in batch order.
    pub fn iter(&self) -> std::slice::Iter<'_, Tensor3<T>> {
        self.images.iter()
    }

    /// Consumes the batch, returning the images.
    #[must_use]
    pub fn into_images(self) -> Vec<Tensor3<T>> {
        self.images
    }

    /// Builds a batch by evaluating `f(i)` for each of the `n` images.
    ///
    /// # Errors
    ///
    /// [`TensorError::EmptyDimension`] if `n == 0`;
    /// [`TensorError::ShapeMismatch`] if `f` produces differing shapes.
    pub fn from_fn(n: usize, f: impl FnMut(usize) -> Tensor3<T>) -> Result<Self, TensorError> {
        Self::new((0..n).map(f).collect())
    }

    /// Maps every image through `f`, preserving batch order.
    ///
    /// # Panics
    ///
    /// Panics if `f` produces images of differing shapes — a mapped batch
    /// must stay uniform.
    #[must_use]
    pub fn map_images<U>(&self, f: impl FnMut(&Tensor3<T>) -> Tensor3<U>) -> Batch<U> {
        Batch::new(self.images.iter().map(f).collect()).expect("mapped batch stays uniform")
    }
}

impl<T> std::ops::Index<usize> for Batch<T> {
    type Output = Tensor3<T>;

    fn index(&self, i: usize) -> &Tensor3<T> {
        &self.images[i]
    }
}

impl<'a, T> IntoIterator for &'a Batch<T> {
    type Item = &'a Tensor3<T>;
    type IntoIter = std::slice::Iter<'a, Tensor3<T>>;

    fn into_iter(self) -> Self::IntoIter {
        self.images.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_batch() {
        assert_eq!(
            Batch::<i8>::new(Vec::new()).unwrap_err(),
            TensorError::EmptyDimension
        );
    }

    #[test]
    fn rejects_mixed_shapes() {
        let images = vec![Tensor3::<i8>::zeros(1, 2, 2), Tensor3::<i8>::zeros(1, 3, 3)];
        assert!(matches!(
            Batch::new(images),
            Err(TensorError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn accessors_agree() {
        let b = Batch::from_fn(4, |i| Tensor3::<i8>::from_fn(2, 3, 3, |_, _, _| i as i8)).unwrap();
        assert_eq!(b.len(), 4);
        assert_eq!(b.shape(), (2, 3, 3));
        assert_eq!(b.images().len(), 4);
        assert_eq!(b.iter().count(), 4);
        assert_eq!((&b).into_iter().count(), 4);
        assert_eq!(b[3][(0, 0, 0)], 3);
        assert_eq!(b.clone().into_images().len(), 4);
    }

    #[test]
    fn map_images_preserves_order_and_shape() {
        let b = Batch::from_fn(3, |i| Tensor3::<i8>::from_fn(1, 2, 2, |_, _, _| i as i8)).unwrap();
        let doubled = b.map_images(|t| t.map(|&v| i16::from(v) * 2));
        assert_eq!(doubled.len(), 3);
        assert_eq!(doubled[2][(0, 1, 1)], 4);
    }
}
