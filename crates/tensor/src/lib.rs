//! Tensor containers, symmetric int8 quantization, and reference
//! convolution/normalization kernels for the EDEA accelerator simulator.
//!
//! The EDEA paper evaluates on MobileNetV1/CIFAR-10 feature maps, which are
//! small, dense, channel-major tensors. This crate provides:
//!
//! * [`Tensor3`] — a `C×H×W` feature-map container (one image), and
//!   [`Tensor4`] — a `K×C×H×W` weight container.
//! * [`Batch`] — a non-empty, uniformly-shaped batch of feature maps, the
//!   unit of multi-image inference (weight tiles fetched once per batch).
//! * [`QuantParams`]/[`QTensor3`]/[`QTensor4`] — symmetric int8 quantization,
//!   matching the paper's 8-bit LSQ deployment precision.
//! * [`conv`] — *reference* floating-point and integer convolutions
//!   (standard, depthwise, pointwise), in both direct and im2col forms. These
//!   are the golden models the accelerator simulator is verified against.
//! * [`ops`] — batch normalization, ReLU, pooling, statistics.
//! * [`rng`] — deterministic synthetic data generators (weights and
//!   CIFAR-like images) used in place of the proprietary training pipeline.
//!
//! # Example
//!
//! ```
//! use edea_tensor::{rng, conv, Tensor3, Tensor4};
//!
//! let image = rng::synthetic_image(3, 32, 32, 7);
//! let weights = rng::kaiming_weights(8, 3, 3, 3, 11);
//! let out = conv::conv2d_f32(&image, &weights, 1, 1);
//! assert_eq!(out.shape(), (8, 32, 32));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod batch;
pub mod conv;
mod error;
pub mod ops;
pub mod quant;
pub mod rng;
mod tensor;

pub use batch::Batch;
pub use error::TensorError;
pub use quant::{QTensor3, QTensor4, QuantParams};
pub use tensor::{Tensor3, Tensor4};
