//! Symmetric int8 quantization.
//!
//! EDEA deploys MobileNetV1 with 8-bit weights and activations obtained via
//! LSQ (learned step size quantization, paper ref \[14\]). At inference time an
//! LSQ-quantized tensor is fully described by its int8 payload plus a single
//! positive step size (scale); zero point is 0 (symmetric). This module
//! implements that representation; the step-size *learning* lives in
//! `edea-nn::lsq`.

use edea_fixed::Round;

use crate::{Tensor3, Tensor4};

/// Symmetric quantization parameters: `real = scale * int`.
///
/// # Example
///
/// ```
/// use edea_tensor::QuantParams;
///
/// let q = QuantParams::new(0.05)?;
/// assert_eq!(q.quantize(1.0), 20);
/// assert_eq!(q.dequantize(20), 1.0);
/// assert_eq!(q.quantize(100.0), 127); // saturates
/// # Ok::<(), edea_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    scale: f32,
}

impl QuantParams {
    /// Creates parameters with the given positive, finite scale.
    ///
    /// # Errors
    ///
    /// Returns [`crate::TensorError::ShapeMismatch`] — reused as a generic
    /// validation error — if `scale` is not a finite positive number.
    pub fn new(scale: f32) -> Result<Self, crate::TensorError> {
        if !(scale.is_finite() && scale > 0.0) {
            return Err(crate::TensorError::ShapeMismatch {
                detail: format!("quantization scale must be finite and positive, got {scale}"),
            });
        }
        Ok(Self { scale })
    }

    /// The step size (`real = scale * int`).
    #[must_use]
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Chooses a scale so that `max_abs` maps to the int8 maximum (127).
    ///
    /// # Panics
    ///
    /// Panics if `max_abs` is not finite-positive.
    #[must_use]
    pub fn from_max_abs(max_abs: f32) -> Self {
        assert!(
            max_abs.is_finite() && max_abs > 0.0,
            "max_abs must be positive"
        );
        Self {
            scale: max_abs / 127.0,
        }
    }

    /// Quantizes one value: `round(x / scale)` clamped to `[-128, 127]`
    /// (round half away from zero, like the hardware).
    #[must_use]
    pub fn quantize(&self, x: f32) -> i8 {
        let v = f64::from(x) / f64::from(self.scale);
        let r = Round::HalfAwayFromZero.round_f64(v.clamp(-1e18, 1e18));
        r.clamp(-128, 127) as i8
    }

    /// Dequantizes one value.
    #[must_use]
    pub fn dequantize(&self, q: i8) -> f32 {
        f32::from(q) * self.scale
    }

    /// Quantizes a feature map.
    #[must_use]
    pub fn quantize_tensor3(&self, t: &Tensor3<f32>) -> QTensor3 {
        QTensor3 {
            values: t.map(|&x| self.quantize(x)),
            params: *self,
        }
    }

    /// Quantizes a weight tensor.
    #[must_use]
    pub fn quantize_tensor4(&self, t: &Tensor4<f32>) -> QTensor4 {
        QTensor4 {
            values: t.map(|&x| self.quantize(x)),
            params: *self,
        }
    }

    /// Mean squared quantization error of representing `values` with this
    /// scale — the objective LSQ minimizes at convergence.
    #[must_use]
    pub fn mse(&self, values: &[f32]) -> f64 {
        if values.is_empty() {
            return 0.0;
        }
        let sum: f64 = values
            .iter()
            .map(|&x| {
                let e = f64::from(self.dequantize(self.quantize(x))) - f64::from(x);
                e * e
            })
            .sum();
        sum / values.len() as f64
    }
}

/// A quantized feature map: int8 payload + [`QuantParams`].
#[derive(Debug, Clone, PartialEq)]
pub struct QTensor3 {
    values: Tensor3<i8>,
    params: QuantParams,
}

impl QTensor3 {
    /// Wraps an existing int8 tensor with its scale.
    #[must_use]
    pub fn new(values: Tensor3<i8>, params: QuantParams) -> Self {
        Self { values, params }
    }

    /// The int8 payload.
    #[must_use]
    pub fn values(&self) -> &Tensor3<i8> {
        &self.values
    }

    /// The quantization parameters.
    #[must_use]
    pub fn params(&self) -> QuantParams {
        self.params
    }

    /// Dequantizes back to floating point.
    #[must_use]
    pub fn dequantize(&self) -> Tensor3<f32> {
        self.values.map(|&q| self.params.dequantize(q))
    }

    /// Fraction of elements that are exactly zero — the activation sparsity
    /// statistic of the paper's Fig. 11.
    #[must_use]
    pub fn zero_fraction(&self) -> f64 {
        let zeros = self.values.as_slice().iter().filter(|&&v| v == 0).count();
        zeros as f64 / self.values.len() as f64
    }

    /// Consumes self, returning the payload tensor.
    #[must_use]
    pub fn into_values(self) -> Tensor3<i8> {
        self.values
    }
}

/// A quantized weight tensor: int8 payload + [`QuantParams`].
#[derive(Debug, Clone, PartialEq)]
pub struct QTensor4 {
    values: Tensor4<i8>,
    params: QuantParams,
}

impl QTensor4 {
    /// Wraps an existing int8 tensor with its scale.
    #[must_use]
    pub fn new(values: Tensor4<i8>, params: QuantParams) -> Self {
        Self { values, params }
    }

    /// The int8 payload.
    #[must_use]
    pub fn values(&self) -> &Tensor4<i8> {
        &self.values
    }

    /// The quantization parameters.
    #[must_use]
    pub fn params(&self) -> QuantParams {
        self.params
    }

    /// Dequantizes back to floating point.
    #[must_use]
    pub fn dequantize(&self) -> Tensor4<f32> {
        self.values.map(|&q| self.params.dequantize(q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_validation() {
        assert!(QuantParams::new(0.0).is_err());
        assert!(QuantParams::new(-1.0).is_err());
        assert!(QuantParams::new(f32::NAN).is_err());
        assert!(QuantParams::new(f32::INFINITY).is_err());
        assert!(QuantParams::new(0.01).is_ok());
    }

    #[test]
    fn quantize_rounds_half_away_from_zero() {
        let q = QuantParams::new(1.0).unwrap();
        assert_eq!(q.quantize(0.5), 1);
        assert_eq!(q.quantize(-0.5), -1);
        assert_eq!(q.quantize(0.49), 0);
        assert_eq!(q.quantize(1.49), 1);
    }

    #[test]
    fn quantize_saturates_to_int8() {
        let q = QuantParams::new(1.0).unwrap();
        assert_eq!(q.quantize(127.6), 127);
        assert_eq!(q.quantize(-129.0), -128);
        assert_eq!(q.quantize(1e30), 127);
        assert_eq!(q.quantize(-1e30), -128);
    }

    #[test]
    fn from_max_abs_maps_extreme_to_127() {
        let q = QuantParams::from_max_abs(6.35);
        assert_eq!(q.quantize(6.35), 127);
        assert_eq!(q.quantize(-6.35), -127);
    }

    #[test]
    fn round_trip_error_bounded_by_half_scale() {
        let q = QuantParams::new(0.1).unwrap();
        for i in -1200..=1200 {
            let x = i as f32 * 0.01;
            let back = q.dequantize(q.quantize(x));
            assert!((back - x).abs() <= 0.05 + 1e-6, "x={x} back={back}");
        }
    }

    #[test]
    fn zero_fraction_counts_exact_zeros() {
        let t = Tensor3::<f32>::from_fn(1, 2, 2, |_, h, w| if h == w { 0.0 } else { 1.0 });
        let q = QuantParams::new(0.5).unwrap().quantize_tensor3(&t);
        assert_eq!(q.zero_fraction(), 0.5);
    }

    #[test]
    fn mse_is_zero_for_exactly_representable() {
        let q = QuantParams::new(0.25).unwrap();
        let vals = [0.0f32, 0.25, -0.5, 1.0, 31.75];
        assert_eq!(q.mse(&vals), 0.0);
        assert_eq!(q.mse(&[]), 0.0);
    }

    #[test]
    fn mse_penalizes_clipping() {
        let q = QuantParams::new(0.01).unwrap(); // max representable 1.27
        let clipped = q.mse(&[5.0]);
        assert!(clipped > 10.0, "clipping error should dominate: {clipped}");
    }

    #[test]
    fn qtensor_dequantize_round_trip() {
        let t = Tensor3::<f32>::from_fn(2, 2, 2, |c, h, w| (c + h + w) as f32 * 0.5 - 1.0);
        let p = QuantParams::new(0.5).unwrap();
        let qt = p.quantize_tensor3(&t);
        assert_eq!(qt.dequantize(), t); // all values are multiples of 0.5
    }

    #[test]
    fn qtensor4_shape_preserved() {
        let t = Tensor4::<f32>::zeros(3, 4, 1, 1);
        let p = QuantParams::new(1.0).unwrap();
        assert_eq!(p.quantize_tensor4(&t).values().shape(), (3, 4, 1, 1));
    }
}
