//! Deterministic synthetic data generation.
//!
//! The paper trains MobileNetV1 on CIFAR-10 in PyTorch; neither the trained
//! checkpoint nor the dataset is part of this reproduction (see
//! ARCHITECTURE.md's substitution notes). What the experiments consume is
//! (a) weight tensors with realistic magnitude distributions and (b) input
//! images with natural-image-like local correlation. This module generates
//! both deterministically from explicit seeds so every experiment is exactly
//! reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Tensor3, Tensor4};

/// A deterministic standard-normal sampler (Box–Muller over `StdRng`).
///
/// # Example
///
/// ```
/// use edea_tensor::rng::Normal;
///
/// let mut n = Normal::new(42);
/// let a = n.sample();
/// let b = Normal::new(42).sample();
/// assert_eq!(a, b); // same seed, same stream
/// ```
#[derive(Debug, Clone)]
pub struct Normal {
    rng: StdRng,
    cached: Option<f64>,
}

impl Normal {
    /// Creates a sampler seeded with `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            cached: None,
        }
    }

    /// Draws one standard-normal sample.
    pub fn sample(&mut self) -> f64 {
        if let Some(v) = self.cached.take() {
            return v;
        }
        // Box–Muller transform.
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.cached = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Draws a sample with the given mean and standard deviation.
    pub fn sample_with(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.sample()
    }
}

/// Kaiming-style (He) initialized convolution weights: zero-mean normal with
/// `std = sqrt(2 / fan_in)`, matching the distribution a freshly-initialized
/// (and, to first order, a trained) CNN layer exhibits.
///
/// # Panics
///
/// Panics if any dimension is zero.
#[must_use]
pub fn kaiming_weights(k: usize, c: usize, kh: usize, kw: usize, seed: u64) -> Tensor4<f32> {
    let fan_in = (c * kh * kw) as f64;
    let std = (2.0 / fan_in).sqrt();
    let mut n = Normal::new(seed ^ 0x5eed_0001);
    Tensor4::from_fn(k, c, kh, kw, |_, _, _, _| n.sample_with(0.0, std) as f32)
}

/// A synthetic natural-image-like feature map in `[-1, 1]`: white noise
/// passed through a separable 3-tap low-pass filter, giving the local spatial
/// correlation real images have (which is what makes activation statistics,
/// and hence sparsity and power, realistic).
///
/// # Panics
///
/// Panics if any dimension is zero.
#[must_use]
pub fn synthetic_image(c: usize, h: usize, w: usize, seed: u64) -> Tensor3<f32> {
    let mut n = Normal::new(seed ^ IMAGE_SEED_SALT);
    let noise = Tensor3::<f32>::from_fn(c, h, w, |_, _, _| n.sample() as f32);
    // Separable [1 2 1]/4 low-pass, clamped replicate borders.
    let blur_h = Tensor3::<f32>::from_fn(c, h, w, |ci, hi, wi| {
        let wm = wi.saturating_sub(1);
        let wp = (wi + 1).min(w - 1);
        0.25 * noise[(ci, hi, wm)] + 0.5 * noise[(ci, hi, wi)] + 0.25 * noise[(ci, hi, wp)]
    });
    let blurred = Tensor3::<f32>::from_fn(c, h, w, |ci, hi, wi| {
        let hm = hi.saturating_sub(1);
        let hp = (hi + 1).min(h - 1);
        0.25 * blur_h[(ci, hm, wi)] + 0.5 * blur_h[(ci, hi, wi)] + 0.25 * blur_h[(ci, hp, wi)]
    });
    blurred.map(|&v| v.clamp(-1.0, 1.0))
}

/// A batch of synthetic images (distinct seeds derived from `seed`).
#[must_use]
pub fn synthetic_batch(n: usize, c: usize, h: usize, w: usize, seed: u64) -> Vec<Tensor3<f32>> {
    (0..n)
        .map(|i| synthetic_image(c, h, w, seed.wrapping_add(i as u64 * 7919)))
        .collect()
}

/// Deterministic int8 tensor with entries uniform in `[lo, hi]`, for
/// engine-level tests.
///
/// # Panics
///
/// Panics if `lo > hi` or any dimension is zero.
#[must_use]
pub fn uniform_i8_tensor3(c: usize, h: usize, w: usize, lo: i8, hi: i8, seed: u64) -> Tensor3<i8> {
    assert!(lo <= hi, "empty range");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xdead_beef);
    Tensor3::from_fn(c, h, w, |_, _, _| rng.gen_range(lo..=hi))
}

/// Deterministic int8 rank-4 tensor with entries uniform in `[lo, hi]`.
///
/// # Panics
///
/// Panics if `lo > hi` or any dimension is zero.
#[must_use]
pub fn uniform_i8_tensor4(
    k: usize,
    c: usize,
    h: usize,
    w: usize,
    lo: i8,
    hi: i8,
    seed: u64,
) -> Tensor4<i8> {
    assert!(lo <= hi, "empty range");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xfeed_f00d);
    Tensor4::from_fn(k, c, h, w, |_, _, _, _| rng.gen_range(lo..=hi))
}

/// Salt mixed into image seeds so images never collide with weight streams
/// derived from the same user seed.
const IMAGE_SEED_SALT: u64 = 0x1089_7a6e_11aa_90cc;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Stats;

    #[test]
    fn normal_moments_are_sane() {
        let mut n = Normal::new(123);
        let samples: Vec<f32> = (0..20_000).map(|_| n.sample() as f32).collect();
        let s = Stats::compute(&samples);
        assert!(s.mean.abs() < 0.03, "mean {mean}", mean = s.mean);
        assert!((s.std - 1.0).abs() < 0.03, "std {std}", std = s.std);
    }

    #[test]
    fn normal_is_deterministic() {
        let a: Vec<f64> = {
            let mut n = Normal::new(7);
            (0..10).map(|_| n.sample()).collect()
        };
        let b: Vec<f64> = {
            let mut n = Normal::new(7);
            (0..10).map(|_| n.sample()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn normal_seeds_differ() {
        let a = Normal::new(1).sample();
        let b = Normal::new(2).sample();
        assert_ne!(a, b);
    }

    #[test]
    fn kaiming_std_scales_with_fan_in() {
        let w1 = kaiming_weights(64, 8, 3, 3, 5);
        let w2 = kaiming_weights(64, 32, 3, 3, 5);
        let s1 = Stats::compute(w1.as_slice());
        let s2 = Stats::compute(w2.as_slice());
        // fan_in quadruples -> std halves
        assert!((s1.std / s2.std - 2.0).abs() < 0.2, "{} {}", s1.std, s2.std);
    }

    #[test]
    fn synthetic_image_is_bounded_and_correlated() {
        let img = synthetic_image(3, 32, 32, 99);
        assert!(img.as_slice().iter().all(|v| (-1.0..=1.0).contains(v)));
        // Neighbouring pixels must correlate positively (low-pass property):
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for c in 0..3 {
            for h in 0..32 {
                for w in 0..31 {
                    num += f64::from(img[(c, h, w)]) * f64::from(img[(c, h, w + 1)]);
                    den += f64::from(img[(c, h, w)]).powi(2);
                }
            }
        }
        assert!(num / den > 0.3, "autocorrelation too low: {}", num / den);
    }

    #[test]
    fn synthetic_batch_images_differ() {
        let batch = synthetic_batch(3, 1, 8, 8, 42);
        assert_eq!(batch.len(), 3);
        assert_ne!(batch[0], batch[1]);
        assert_ne!(batch[1], batch[2]);
    }

    #[test]
    fn uniform_tensors_respect_bounds() {
        let t3 = uniform_i8_tensor3(4, 5, 6, -3, 7, 1);
        assert!(t3.as_slice().iter().all(|&v| (-3..=7).contains(&v)));
        let t4 = uniform_i8_tensor4(2, 3, 3, 3, -128, 127, 2);
        assert_eq!(t4.len(), 54);
    }

    #[test]
    fn uniform_full_range_hits_extremes_eventually() {
        let t = uniform_i8_tensor3(8, 32, 32, -128, 127, 3);
        let min = t.as_slice().iter().min().unwrap();
        let max = t.as_slice().iter().max().unwrap();
        assert!(
            *min <= -120 && *max >= 120,
            "range not exercised: {min} {max}"
        );
    }
}
