//! Fixed-rank tensor containers.

use std::fmt;

use crate::TensorError;

/// A dense channel-major (`C×H×W`) rank-3 tensor — one feature map.
///
/// Element `(c, h, w)` lives at linear index `(c*H + h)*W + w`, the layout
/// the accelerator's external memory uses (channel planes, then rows).
///
/// # Example
///
/// ```
/// use edea_tensor::Tensor3;
///
/// let mut t = Tensor3::<f32>::zeros(2, 3, 3);
/// t[(1, 2, 0)] = 5.0;
/// assert_eq!(t[(1, 2, 0)], 5.0);
/// assert_eq!(t.shape(), (2, 3, 3));
/// assert_eq!(t.len(), 18);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor3<T> {
    data: Vec<T>,
    c: usize,
    h: usize,
    w: usize,
}

impl<T: Copy + Default> Tensor3<T> {
    /// Creates a tensor filled with `T::default()`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn zeros(c: usize, h: usize, w: usize) -> Self {
        assert!(
            c > 0 && h > 0 && w > 0,
            "tensor dimensions must be non-zero"
        );
        Self {
            data: vec![T::default(); c * h * w],
            c,
            h,
            w,
        }
    }

    /// Creates a tensor by evaluating `f(c, h, w)` for every element.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn from_fn(
        c: usize,
        h: usize,
        w: usize,
        mut f: impl FnMut(usize, usize, usize) -> T,
    ) -> Self {
        let mut t = Self::zeros(c, h, w);
        for ci in 0..c {
            for hi in 0..h {
                for wi in 0..w {
                    t[(ci, hi, wi)] = f(ci, hi, wi);
                }
            }
        }
        t
    }

    /// Wraps an existing buffer.
    ///
    /// # Errors
    ///
    /// [`TensorError::LengthMismatch`] if `data.len() != c*h*w`;
    /// [`TensorError::EmptyDimension`] if any dimension is zero.
    pub fn from_vec(data: Vec<T>, c: usize, h: usize, w: usize) -> Result<Self, TensorError> {
        if c == 0 || h == 0 || w == 0 {
            return Err(TensorError::EmptyDimension);
        }
        if data.len() != c * h * w {
            return Err(TensorError::LengthMismatch {
                expected: c * h * w,
                actual: data.len(),
            });
        }
        Ok(Self { data, c, h, w })
    }

    /// Returns a spatially zero-padded copy (`pad` rows/cols on every side).
    #[must_use]
    pub fn zero_padded(&self, pad: usize) -> Self {
        if pad == 0 {
            return self.clone();
        }
        let mut out = Self::zeros(self.c, self.h + 2 * pad, self.w + 2 * pad);
        for c in 0..self.c {
            for h in 0..self.h {
                for w in 0..self.w {
                    out[(c, h + pad, w + pad)] = self[(c, h, w)];
                }
            }
        }
        out
    }

    /// Reshapes to `(c, h, w)` in place and fills every element with
    /// `T::default()`, reusing the existing allocation whenever its
    /// capacity allows — the steady-state path performs no heap
    /// allocation. This is the scratch-buffer primitive of the simulator's
    /// tile pipeline: a buffer is reserved once at its largest shape and
    /// `resize_zeroed` between uses.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn resize_zeroed(&mut self, c: usize, h: usize, w: usize) {
        assert!(
            c > 0 && h > 0 && w > 0,
            "tensor dimensions must be non-zero"
        );
        self.data.clear();
        self.data.resize(c * h * w, T::default());
        self.c = c;
        self.h = h;
        self.w = w;
    }

    /// Reshapes to `(c, h, w)` in place, leaving the contents
    /// **unspecified** (stale) when the element count already matches —
    /// for consumers that overwrite every element anyway, this skips
    /// [`Tensor3::resize_zeroed`]'s fill. When the count changes it
    /// behaves exactly like `resize_zeroed`. Never allocates when
    /// capacity suffices.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn resize_for_overwrite(&mut self, c: usize, h: usize, w: usize) {
        assert!(
            c > 0 && h > 0 && w > 0,
            "tensor dimensions must be non-zero"
        );
        if self.data.len() != c * h * w {
            self.data.clear();
            self.data.resize(c * h * w, T::default());
        }
        self.c = c;
        self.h = h;
        self.w = w;
    }

    /// Ensures the backing storage can hold at least `n` elements, so a
    /// later [`Tensor3::resize_zeroed`] up to that size cannot allocate.
    /// Shape and contents are untouched.
    pub fn reserve_capacity(&mut self, n: usize) {
        if n > self.data.len() {
            self.data.reserve(n - self.data.len());
        }
    }

    /// Copies the window anchored at `(c0, h0, w0)` whose extent is `out`'s
    /// shape into `out`, overwriting every element — the allocation-free
    /// counterpart of building a window tensor from scratch. Rows are moved
    /// with flat-index `copy_from_slice` calls, not per-element indexing.
    ///
    /// # Panics
    ///
    /// Panics if the window exceeds this tensor's bounds.
    pub fn copy_window_into(&self, c0: usize, h0: usize, w0: usize, out: &mut Self) {
        let (cn, hn, wn) = out.shape();
        assert!(
            c0 + cn <= self.c && h0 + hn <= self.h && w0 + wn <= self.w,
            "window ({cn}, {hn}, {wn}) at ({c0}, {h0}, {w0}) exceeds shape {:?}",
            self.shape()
        );
        for c in 0..cn {
            for h in 0..hn {
                let src = ((c0 + c) * self.h + (h0 + h)) * self.w + w0;
                let dst = (c * hn + h) * wn;
                out.data[dst..dst + wn].copy_from_slice(&self.data[src..src + wn]);
            }
        }
    }

    /// Writes `src` into the window of this tensor anchored at
    /// `(c0, h0, w0)` — the inverse of [`Tensor3::copy_window_into`], used
    /// to scatter a computed tile back into a full feature map without
    /// per-element index arithmetic.
    ///
    /// # Panics
    ///
    /// Panics if the window exceeds this tensor's bounds.
    pub fn paste_window(&mut self, c0: usize, h0: usize, w0: usize, src: &Self) {
        let (cn, hn, wn) = src.shape();
        assert!(
            c0 + cn <= self.c && h0 + hn <= self.h && w0 + wn <= self.w,
            "window ({cn}, {hn}, {wn}) at ({c0}, {h0}, {w0}) exceeds shape ({}, {}, {})",
            self.c,
            self.h,
            self.w
        );
        for c in 0..cn {
            for h in 0..hn {
                let dst = ((c0 + c) * self.h + (h0 + h)) * self.w + w0;
                let s = (c * hn + h) * wn;
                self.data[dst..dst + wn].copy_from_slice(&src.data[s..s + wn]);
            }
        }
    }

    /// Extracts channels `[c0, c0+n)` into a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the channel count.
    #[must_use]
    pub fn channel_slice(&self, c0: usize, n: usize) -> Self {
        assert!(
            c0 + n <= self.c,
            "channel range {c0}..{} out of 0..{}",
            c0 + n,
            self.c
        );
        let plane = self.h * self.w;
        let data = self.data[c0 * plane..(c0 + n) * plane].to_vec();
        Self {
            data,
            c: n,
            h: self.h,
            w: self.w,
        }
    }
}

impl<T> Tensor3<T> {
    /// `(C, H, W)`.
    #[must_use]
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.c, self.h, self.w)
    }

    /// Number of channels.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.c
    }

    /// Spatial height.
    #[must_use]
    pub fn height(&self) -> usize {
        self.h
    }

    /// Spatial width.
    #[must_use]
    pub fn width(&self) -> usize {
        self.w
    }

    /// Total number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements (never true: dims are non-zero).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing storage (CHW order).
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable view of the backing storage (CHW order).
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the tensor, returning the backing storage.
    #[must_use]
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Iterates over `((c, h, w), &value)` in storage order.
    pub fn indexed_iter(&self) -> impl Iterator<Item = ((usize, usize, usize), &T)> {
        let (h, w) = (self.h, self.w);
        self.data.iter().enumerate().map(move |(i, v)| {
            let c = i / (h * w);
            let r = i % (h * w);
            ((c, r / w, r % w), v)
        })
    }

    /// Applies `f` elementwise, producing a new tensor.
    #[must_use]
    pub fn map<U>(&self, f: impl Fn(&T) -> U) -> Tensor3<U> {
        Tensor3 {
            data: self.data.iter().map(f).collect(),
            c: self.c,
            h: self.h,
            w: self.w,
        }
    }

    #[inline]
    fn offset(&self, c: usize, h: usize, w: usize) -> usize {
        debug_assert!(
            c < self.c && h < self.h && w < self.w,
            "index out of bounds"
        );
        (c * self.h + h) * self.w + w
    }

    /// Bounds-checked element access.
    #[must_use]
    pub fn get(&self, c: usize, h: usize, w: usize) -> Option<&T> {
        if c < self.c && h < self.h && w < self.w {
            self.data.get(self.offset(c, h, w))
        } else {
            None
        }
    }
}

impl<T> std::ops::Index<(usize, usize, usize)> for Tensor3<T> {
    type Output = T;

    #[inline]
    fn index(&self, (c, h, w): (usize, usize, usize)) -> &T {
        let i = self.offset(c, h, w);
        &self.data[i]
    }
}

impl<T> std::ops::IndexMut<(usize, usize, usize)> for Tensor3<T> {
    #[inline]
    fn index_mut(&mut self, (c, h, w): (usize, usize, usize)) -> &mut T {
        let i = self.offset(c, h, w);
        &mut self.data[i]
    }
}

impl<T: fmt::Display> fmt::Display for Tensor3<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Tensor3 {}x{}x{}:", self.c, self.h, self.w)?;
        for c in 0..self.c.min(4) {
            writeln!(f, " channel {c}:")?;
            for h in 0..self.h.min(8) {
                write!(f, "  ")?;
                for w in 0..self.w.min(8) {
                    write!(f, "{} ", self[(c, h, w)])?;
                }
                writeln!(f)?;
            }
        }
        if self.c > 4 || self.h > 8 || self.w > 8 {
            writeln!(f, " …")?;
        }
        Ok(())
    }
}

/// A dense rank-4 tensor (`K×C×H×W`) — a stack of convolution kernels.
///
/// For depthwise weights `C == 1` (one 2-D filter per output channel); for
/// pointwise weights `H == W == 1`.
///
/// # Example
///
/// ```
/// use edea_tensor::Tensor4;
///
/// let w = Tensor4::<i8>::zeros(16, 8, 1, 1); // a PWC kernel tile
/// assert_eq!(w.shape(), (16, 8, 1, 1));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor4<T> {
    data: Vec<T>,
    k: usize,
    c: usize,
    h: usize,
    w: usize,
}

impl<T: Copy + Default> Tensor4<T> {
    /// Creates a tensor filled with `T::default()`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn zeros(k: usize, c: usize, h: usize, w: usize) -> Self {
        assert!(
            k > 0 && c > 0 && h > 0 && w > 0,
            "tensor dimensions must be non-zero"
        );
        Self {
            data: vec![T::default(); k * c * h * w],
            k,
            c,
            h,
            w,
        }
    }

    /// Creates a tensor by evaluating `f(k, c, h, w)` for every element.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn from_fn(
        k: usize,
        c: usize,
        h: usize,
        w: usize,
        mut f: impl FnMut(usize, usize, usize, usize) -> T,
    ) -> Self {
        let mut t = Self::zeros(k, c, h, w);
        for ki in 0..k {
            for ci in 0..c {
                for hi in 0..h {
                    for wi in 0..w {
                        t[(ki, ci, hi, wi)] = f(ki, ci, hi, wi);
                    }
                }
            }
        }
        t
    }

    /// Wraps an existing buffer.
    ///
    /// # Errors
    ///
    /// [`TensorError::LengthMismatch`] / [`TensorError::EmptyDimension`] as
    /// for [`Tensor3::from_vec`].
    pub fn from_vec(
        data: Vec<T>,
        k: usize,
        c: usize,
        h: usize,
        w: usize,
    ) -> Result<Self, TensorError> {
        if k == 0 || c == 0 || h == 0 || w == 0 {
            return Err(TensorError::EmptyDimension);
        }
        if data.len() != k * c * h * w {
            return Err(TensorError::LengthMismatch {
                expected: k * c * h * w,
                actual: data.len(),
            });
        }
        Ok(Self { data, k, c, h, w })
    }

    /// Extracts kernels `[k0, k0+n)`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the kernel count.
    #[must_use]
    pub fn kernel_slice(&self, k0: usize, n: usize) -> Self {
        assert!(
            k0 + n <= self.k,
            "kernel range {k0}..{} out of 0..{}",
            k0 + n,
            self.k
        );
        let vol = self.c * self.h * self.w;
        let data = self.data[k0 * vol..(k0 + n) * vol].to_vec();
        Self {
            data,
            k: n,
            c: self.c,
            h: self.h,
            w: self.w,
        }
    }

    /// Extracts input channels `[c0, c0+n)` from every kernel.
    ///
    /// Channels of one kernel are contiguous in KCHW order, so the slice
    /// is one flat-index block copy per kernel.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the channel count.
    #[must_use]
    pub fn channel_slice(&self, c0: usize, n: usize) -> Self {
        assert!(
            c0 + n <= self.c,
            "channel range {c0}..{} out of 0..{}",
            c0 + n,
            self.c
        );
        let plane = self.h * self.w;
        let mut out = Self::zeros(self.k, n, self.h, self.w);
        for k in 0..self.k {
            let src = (k * self.c + c0) * plane;
            let dst = k * n * plane;
            out.data[dst..dst + n * plane].copy_from_slice(&self.data[src..src + n * plane]);
        }
        out
    }
}

impl<T> Tensor4<T> {
    /// `(K, C, H, W)`.
    #[must_use]
    pub fn shape(&self) -> (usize, usize, usize, usize) {
        (self.k, self.c, self.h, self.w)
    }

    /// Number of kernels (output channels).
    #[must_use]
    pub fn kernels(&self) -> usize {
        self.k
    }

    /// Number of input channels per kernel.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.c
    }

    /// Kernel height.
    #[must_use]
    pub fn height(&self) -> usize {
        self.h
    }

    /// Kernel width.
    #[must_use]
    pub fn width(&self) -> usize {
        self.w
    }

    /// Total number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements (never true: dims are non-zero).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing storage (KCHW order).
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable view of the backing storage (KCHW order).
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Applies `f` elementwise, producing a new tensor.
    #[must_use]
    pub fn map<U>(&self, f: impl Fn(&T) -> U) -> Tensor4<U> {
        Tensor4 {
            data: self.data.iter().map(f).collect(),
            k: self.k,
            c: self.c,
            h: self.h,
            w: self.w,
        }
    }

    #[inline]
    fn offset(&self, k: usize, c: usize, h: usize, w: usize) -> usize {
        debug_assert!(
            k < self.k && c < self.c && h < self.h && w < self.w,
            "index out of bounds"
        );
        ((k * self.c + c) * self.h + h) * self.w + w
    }
}

impl<T> std::ops::Index<(usize, usize, usize, usize)> for Tensor4<T> {
    type Output = T;

    #[inline]
    fn index(&self, (k, c, h, w): (usize, usize, usize, usize)) -> &T {
        let i = self.offset(k, c, h, w);
        &self.data[i]
    }
}

impl<T> std::ops::IndexMut<(usize, usize, usize, usize)> for Tensor4<T> {
    #[inline]
    fn index_mut(&mut self, (k, c, h, w): (usize, usize, usize, usize)) -> &mut T {
        let i = self.offset(k, c, h, w);
        &mut self.data[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_chw() {
        let t = Tensor3::<i32>::from_fn(2, 2, 3, |c, h, w| (c * 100 + h * 10 + w) as i32);
        assert_eq!(
            t.as_slice(),
            &[0, 1, 2, 10, 11, 12, 100, 101, 102, 110, 111, 112]
        );
    }

    #[test]
    fn from_vec_validates() {
        assert!(Tensor3::from_vec(vec![0u8; 5], 1, 2, 3).is_err());
        assert!(Tensor3::from_vec(vec![0u8; 6], 1, 2, 3).is_ok());
        assert!(Tensor3::from_vec(Vec::<u8>::new(), 0, 2, 3).is_err());
        assert!(Tensor4::from_vec(vec![0u8; 24], 2, 2, 2, 3).is_ok());
        assert!(Tensor4::from_vec(vec![0u8; 23], 2, 2, 2, 3).is_err());
    }

    #[test]
    fn zero_padding_places_values_centrally() {
        let t = Tensor3::<f32>::from_fn(1, 2, 2, |_, h, w| (h * 2 + w) as f32 + 1.0);
        let p = t.zero_padded(1);
        assert_eq!(p.shape(), (1, 4, 4));
        assert_eq!(p[(0, 0, 0)], 0.0);
        assert_eq!(p[(0, 1, 1)], 1.0);
        assert_eq!(p[(0, 2, 2)], 4.0);
        assert_eq!(p[(0, 3, 3)], 0.0);
        let total: f32 = p.as_slice().iter().sum();
        assert_eq!(total, 10.0);
    }

    #[test]
    fn zero_padding_zero_is_clone() {
        let t = Tensor3::<i8>::from_fn(2, 3, 3, |c, h, w| (c + h + w) as i8);
        assert_eq!(t.zero_padded(0), t);
    }

    #[test]
    fn channel_slice_extracts_planes() {
        let t = Tensor3::<i32>::from_fn(4, 2, 2, |c, _, _| c as i32);
        let s = t.channel_slice(1, 2);
        assert_eq!(s.shape(), (2, 2, 2));
        assert!(s.as_slice()[..4].iter().all(|&v| v == 1));
        assert!(s.as_slice()[4..].iter().all(|&v| v == 2));
    }

    #[test]
    #[should_panic(expected = "channel range")]
    fn channel_slice_out_of_range_panics() {
        let t = Tensor3::<i32>::zeros(4, 2, 2);
        let _ = t.channel_slice(3, 2);
    }

    #[test]
    fn resize_zeroed_reuses_capacity_and_zeroes() {
        let mut t = Tensor3::<i32>::from_fn(4, 4, 4, |c, h, w| (c + h + w) as i32);
        let cap = t.data.capacity();
        t.resize_zeroed(2, 3, 3);
        assert_eq!(t.shape(), (2, 3, 3));
        assert!(t.as_slice().iter().all(|&v| v == 0));
        assert_eq!(t.data.capacity(), cap, "shrink must not reallocate");
        // Growing within capacity keeps the buffer too.
        t.resize_zeroed(4, 4, 4);
        assert_eq!(t.data.capacity(), cap);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn resize_zeroed_rejects_empty() {
        Tensor3::<u8>::zeros(1, 1, 1).resize_zeroed(0, 1, 1);
    }

    #[test]
    fn resize_for_overwrite_keeps_len_matched_contents_and_zeroes_growth() {
        let mut t = Tensor3::<i32>::from_fn(2, 2, 3, |c, h, w| (c * 100 + h * 10 + w) as i32);
        // Same element count: reshape only, contents (stale) preserved.
        t.resize_for_overwrite(3, 2, 2);
        assert_eq!(t.shape(), (3, 2, 2));
        assert_eq!(t.as_slice()[0], 0);
        assert_eq!(t.as_slice()[11], 112);
        // Different element count: behaves like resize_zeroed.
        t.resize_for_overwrite(2, 2, 2);
        assert_eq!(t.shape(), (2, 2, 2));
        assert!(t.as_slice().iter().all(|&v| v == 0));
    }

    #[test]
    fn reserve_capacity_prevents_later_allocation() {
        let mut t = Tensor3::<i32>::zeros(1, 1, 1);
        t.reserve_capacity(64);
        let cap = t.data.capacity();
        assert!(cap >= 64);
        t.resize_zeroed(4, 4, 4);
        assert_eq!(
            t.data.capacity(),
            cap,
            "resize within capacity must not reallocate"
        );
    }

    #[test]
    fn copy_window_into_matches_from_fn_window() {
        let t = Tensor3::<i32>::from_fn(6, 7, 8, |c, h, w| (c * 100 + h * 10 + w) as i32);
        let mut win = Tensor3::<i32>::zeros(3, 4, 5);
        t.copy_window_into(2, 1, 3, &mut win);
        let expect = Tensor3::from_fn(3, 4, 5, |c, h, w| t[(2 + c, 1 + h, 3 + w)]);
        assert_eq!(win, expect);
        // Full-tensor window is an identity copy.
        let mut full = Tensor3::<i32>::zeros(6, 7, 8);
        t.copy_window_into(0, 0, 0, &mut full);
        assert_eq!(full, t);
    }

    #[test]
    #[should_panic(expected = "exceeds shape")]
    fn copy_window_into_rejects_out_of_bounds() {
        let t = Tensor3::<i32>::zeros(2, 4, 4);
        let mut win = Tensor3::<i32>::zeros(1, 3, 3);
        t.copy_window_into(0, 2, 2, &mut win);
    }

    #[test]
    fn paste_window_is_inverse_of_copy_window_into() {
        let t = Tensor3::<i32>::from_fn(4, 5, 6, |c, h, w| (c * 100 + h * 10 + w) as i32);
        let mut win = Tensor3::<i32>::zeros(2, 2, 3);
        t.copy_window_into(1, 2, 1, &mut win);
        let mut out = Tensor3::<i32>::zeros(4, 5, 6);
        out.paste_window(1, 2, 1, &win);
        for c in 0..2 {
            for h in 0..2 {
                for w in 0..3 {
                    assert_eq!(out[(1 + c, 2 + h, 1 + w)], t[(1 + c, 2 + h, 1 + w)]);
                }
            }
        }
        // Elements outside the window are untouched.
        assert_eq!(out[(0, 0, 0)], 0);
        assert_eq!(out[(3, 4, 5)], 0);
    }

    #[test]
    #[should_panic(expected = "exceeds shape")]
    fn paste_window_rejects_out_of_bounds() {
        let mut t = Tensor3::<i32>::zeros(2, 4, 4);
        let win = Tensor3::<i32>::zeros(1, 3, 3);
        t.paste_window(1, 2, 2, &win);
    }

    #[test]
    fn indexed_iter_covers_every_element_once() {
        let t = Tensor3::<i32>::from_fn(3, 4, 5, |c, h, w| (c * 20 + h * 5 + w) as i32);
        let mut count = 0;
        for ((c, h, w), &v) in t.indexed_iter() {
            assert_eq!(v, (c * 20 + h * 5 + w) as i32);
            count += 1;
        }
        assert_eq!(count, 60);
    }

    #[test]
    fn map_preserves_shape() {
        let t = Tensor3::<i8>::from_fn(2, 2, 2, |c, _, _| c as i8);
        let m: Tensor3<f32> = t.map(|&v| f32::from(v) * 2.0);
        assert_eq!(m.shape(), t.shape());
        assert_eq!(m[(1, 0, 0)], 2.0);
    }

    #[test]
    fn tensor4_kernel_and_channel_slices() {
        let t = Tensor4::<i32>::from_fn(4, 6, 1, 1, |k, c, _, _| (k * 10 + c) as i32);
        let ks = t.kernel_slice(2, 2);
        assert_eq!(ks.shape(), (2, 6, 1, 1));
        assert_eq!(ks[(0, 0, 0, 0)], 20);
        let cs = t.channel_slice(4, 2);
        assert_eq!(cs.shape(), (4, 2, 1, 1));
        assert_eq!(cs[(3, 1, 0, 0)], 35);
    }

    #[test]
    fn get_is_bounds_checked() {
        let t = Tensor3::<u8>::zeros(1, 1, 1);
        assert!(t.get(0, 0, 0).is_some());
        assert!(t.get(1, 0, 0).is_none());
        assert!(t.get(0, 1, 0).is_none());
        assert!(t.get(0, 0, 1).is_none());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zeros_rejects_empty() {
        let _ = Tensor3::<u8>::zeros(0, 1, 1);
    }

    #[test]
    fn display_is_nonempty() {
        let t = Tensor3::<i32>::zeros(1, 2, 2);
        assert!(!format!("{t}").is_empty());
    }
}
