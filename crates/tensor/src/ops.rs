//! Non-convolutional reference operations: batch norm, ReLU, pooling,
//! statistics.

use crate::{Tensor3, TensorError};

/// Per-channel batch-normalization parameters, as they exist after training:
/// `y = γ·(x − μ)/√(σ² + ε) + β`.
///
/// At inference all five quantities are constants (paper Sec. III-C); the
/// Non-Conv unit folds them away, but this reference form is what the fold is
/// verified against.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchNorm {
    /// Scale γ, one per channel.
    pub gamma: Vec<f32>,
    /// Shift β, one per channel.
    pub beta: Vec<f32>,
    /// Running mean μ, one per channel.
    pub mean: Vec<f32>,
    /// Running variance σ², one per channel.
    pub var: Vec<f32>,
    /// Numerical-stability constant ε.
    pub eps: f32,
}

impl BatchNorm {
    /// Identity normalization for `c` channels (γ=1, β=0, μ=0, σ²=1).
    #[must_use]
    pub fn identity(c: usize) -> Self {
        Self {
            gamma: vec![1.0; c],
            beta: vec![0.0; c],
            mean: vec![0.0; c],
            var: vec![1.0; c],
            eps: 1e-5,
        }
    }

    /// Number of channels.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.gamma.len()
    }

    /// Validates that all parameter vectors have length `c` and variances
    /// are non-negative.
    ///
    /// # Errors
    ///
    /// [`TensorError::ShapeMismatch`] describing the first inconsistency.
    pub fn validate(&self, c: usize) -> Result<(), TensorError> {
        for (name, len) in [
            ("gamma", self.gamma.len()),
            ("beta", self.beta.len()),
            ("mean", self.mean.len()),
            ("var", self.var.len()),
        ] {
            if len != c {
                return Err(TensorError::ShapeMismatch {
                    detail: format!("batchnorm {name} has {len} channels, expected {c}"),
                });
            }
        }
        if self.var.iter().any(|&v| v < 0.0 || !v.is_finite()) {
            return Err(TensorError::ShapeMismatch {
                detail: "batchnorm variance must be finite and non-negative".to_owned(),
            });
        }
        Ok(())
    }

    /// The affine coefficients `(k_c, b_c)` such that
    /// `bn(x) = k_c·x + b_c` per channel — the first step of the Non-Conv
    /// fold.
    #[must_use]
    pub fn affine_coefficients(&self) -> Vec<(f32, f32)> {
        (0..self.channels())
            .map(|c| {
                let inv_sigma = 1.0 / (self.var[c] + self.eps).sqrt();
                let k = self.gamma[c] * inv_sigma;
                let b = self.beta[c] - self.gamma[c] * self.mean[c] * inv_sigma;
                (k, b)
            })
            .collect()
    }

    /// Applies the normalization to a feature map.
    ///
    /// # Panics
    ///
    /// Panics if channel counts disagree.
    #[must_use]
    pub fn apply(&self, x: &Tensor3<f32>) -> Tensor3<f32> {
        assert_eq!(x.channels(), self.channels(), "batchnorm channel mismatch");
        let coeff = self.affine_coefficients();
        let (c, h, w) = x.shape();
        Tensor3::from_fn(c, h, w, |ci, hi, wi| {
            let (k, b) = coeff[ci];
            k * x[(ci, hi, wi)] + b
        })
    }
}

/// ReLU: `max(x, 0)` elementwise.
#[must_use]
pub fn relu(x: &Tensor3<f32>) -> Tensor3<f32> {
    x.map(|&v| v.max(0.0))
}

/// Global average pooling: collapses each channel plane to its mean.
#[must_use]
pub fn global_avg_pool(x: &Tensor3<f32>) -> Vec<f32> {
    let (c, h, w) = x.shape();
    let n = (h * w) as f32;
    (0..c)
        .map(|ci| {
            let mut sum = 0.0;
            for hi in 0..h {
                for wi in 0..w {
                    sum += x[(ci, hi, wi)];
                }
            }
            sum / n
        })
        .collect()
}

/// Fully-connected layer: `y = W·x + b` with `W` of shape `out×in`.
///
/// # Panics
///
/// Panics if dimensions disagree.
#[must_use]
pub fn linear(x: &[f32], weights: &[f32], bias: &[f32], out: usize) -> Vec<f32> {
    let n = x.len();
    assert_eq!(weights.len(), out * n, "weight matrix must be out*in");
    assert_eq!(bias.len(), out, "bias must have out entries");
    (0..out)
        .map(|o| {
            let mut acc = bias[o];
            for (i, &xi) in x.iter().enumerate() {
                acc += weights[o * n + i] * xi;
            }
            acc
        })
        .collect()
}

/// Summary statistics of a value collection, used by quantization observers
/// and by the sparsity-shaping machinery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Minimum value.
    pub min: f32,
    /// Maximum value.
    pub max: f32,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
}

impl Stats {
    /// Computes statistics over `values`.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    #[must_use]
    pub fn compute(values: &[f32]) -> Self {
        assert!(!values.is_empty(), "stats of empty slice");
        let mut min = f32::INFINITY;
        let mut max = f32::NEG_INFINITY;
        let mut sum = 0.0f64;
        for &v in values {
            min = min.min(v);
            max = max.max(v);
            sum += f64::from(v);
        }
        let mean = sum / values.len() as f64;
        let var = values
            .iter()
            .map(|&v| (f64::from(v) - mean).powi(2))
            .sum::<f64>()
            / values.len() as f64;
        Self {
            min,
            max,
            mean,
            std: var.sqrt(),
        }
    }

    /// Largest absolute value.
    #[must_use]
    pub fn max_abs(&self) -> f32 {
        self.min.abs().max(self.max.abs())
    }
}

/// The `q`-th quantile (0 ≤ q ≤ 1) of `values`, by sorting (nearest-rank).
///
/// # Panics
///
/// Panics if `values` is empty or `q` is outside `[0, 1]`.
#[must_use]
pub fn quantile(values: &[f32], q: f64) -> f32 {
    assert!(!values.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile fraction out of range");
    let mut sorted: Vec<f32> = values.to_vec();
    sorted.sort_by(f32::total_cmp);
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Fraction of `values` that are `<= 0` — predicts post-ReLU zero fraction.
///
/// # Panics
///
/// Panics if `values` is empty.
#[must_use]
pub fn nonpositive_fraction(values: &[f32]) -> f64 {
    assert!(!values.is_empty(), "fraction of empty slice");
    values.iter().filter(|&&v| v <= 0.0).count() as f64 / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    #[test]
    fn identity_bn_is_identity_up_to_eps() {
        let x = rng::synthetic_image(3, 4, 4, 1);
        let bn = BatchNorm::identity(3);
        let y = bn.apply(&x);
        for (a, b) in x.as_slice().iter().zip(y.as_slice()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn bn_standardizes_constant_offset() {
        // x with mean 5 var 4 per channel: bn with μ=5, σ²=4, γ=1, β=0 gives
        // (x-5)/2.
        let x = Tensor3::from_fn(1, 2, 2, |_, h, w| 5.0 + (h * 2 + w) as f32 * 2.0 - 3.0);
        let bn = BatchNorm {
            gamma: vec![1.0],
            beta: vec![0.0],
            mean: vec![5.0],
            var: vec![4.0],
            eps: 0.0,
        };
        let y = bn.apply(&x);
        for ((_, h, w), &v) in y.indexed_iter() {
            let expect = ((h * 2 + w) as f32 * 2.0 - 3.0) / 2.0;
            assert!((v - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn affine_coefficients_match_definition() {
        let bn = BatchNorm {
            gamma: vec![2.0],
            beta: vec![1.0],
            mean: vec![3.0],
            var: vec![0.25],
            eps: 0.0,
        };
        let (k, b) = bn.affine_coefficients()[0];
        assert!((k - 4.0).abs() < 1e-6); // 2/0.5
        assert!((b - (1.0 - 2.0 * 3.0 / 0.5)).abs() < 1e-5); // 1 - 12 = -11
    }

    #[test]
    fn bn_validate_catches_mismatch_and_negative_var() {
        let mut bn = BatchNorm::identity(4);
        assert!(bn.validate(4).is_ok());
        assert!(bn.validate(5).is_err());
        bn.var[2] = -1.0;
        assert!(bn.validate(4).is_err());
    }

    #[test]
    fn relu_clamps_negatives_only() {
        let x = Tensor3::from_fn(1, 1, 4, |_, _, w| w as f32 - 2.0);
        let y = relu(&x);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn global_avg_pool_means_per_channel() {
        let x = Tensor3::from_fn(2, 2, 2, |c, h, w| (c * 4 + h * 2 + w) as f32);
        let p = global_avg_pool(&x);
        assert_eq!(p, vec![1.5, 5.5]);
    }

    #[test]
    fn linear_reference() {
        let y = linear(
            &[1.0, 2.0],
            &[1.0, 0.0, 0.0, 1.0, 1.0, 1.0],
            &[0.0, 0.0, 0.5],
            3,
        );
        assert_eq!(y, vec![1.0, 2.0, 3.5]);
    }

    #[test]
    #[should_panic(expected = "out*in")]
    fn linear_rejects_bad_weight_size() {
        let _ = linear(&[1.0, 2.0], &[1.0], &[0.0], 1);
    }

    #[test]
    fn stats_reference() {
        let s = Stats::compute(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.mean, 2.5);
        assert!((s.std - 1.118_033_988_749_895).abs() < 1e-9);
        assert_eq!(s.max_abs(), 4.0);
    }

    #[test]
    fn quantile_nearest_rank() {
        let v = [5.0f32, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 5.0);
        assert_eq!(quantile(&v, 0.5), 3.0);
    }

    #[test]
    fn nonpositive_fraction_counts() {
        assert_eq!(nonpositive_fraction(&[-1.0, 0.0, 1.0, 2.0]), 0.5);
        assert_eq!(nonpositive_fraction(&[1.0]), 0.0);
    }
}
