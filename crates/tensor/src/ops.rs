//! Non-convolutional reference operations: batch norm, ReLU, pooling,
//! statistics.

use crate::{Tensor3, TensorError};

/// Per-channel batch-normalization parameters, as they exist after training:
/// `y = γ·(x − μ)/√(σ² + ε) + β`.
///
/// At inference all five quantities are constants (paper Sec. III-C); the
/// Non-Conv unit folds them away, but this reference form is what the fold is
/// verified against.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchNorm {
    /// Scale γ, one per channel.
    pub gamma: Vec<f32>,
    /// Shift β, one per channel.
    pub beta: Vec<f32>,
    /// Running mean μ, one per channel.
    pub mean: Vec<f32>,
    /// Running variance σ², one per channel.
    pub var: Vec<f32>,
    /// Numerical-stability constant ε.
    pub eps: f32,
}

impl BatchNorm {
    /// Identity normalization for `c` channels (γ=1, β=0, μ=0, σ²=1).
    #[must_use]
    pub fn identity(c: usize) -> Self {
        Self {
            gamma: vec![1.0; c],
            beta: vec![0.0; c],
            mean: vec![0.0; c],
            var: vec![1.0; c],
            eps: 1e-5,
        }
    }

    /// Number of channels.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.gamma.len()
    }

    /// Validates that all parameter vectors have length `c` and variances
    /// are non-negative.
    ///
    /// # Errors
    ///
    /// [`TensorError::ShapeMismatch`] describing the first inconsistency.
    pub fn validate(&self, c: usize) -> Result<(), TensorError> {
        for (name, len) in [
            ("gamma", self.gamma.len()),
            ("beta", self.beta.len()),
            ("mean", self.mean.len()),
            ("var", self.var.len()),
        ] {
            if len != c {
                return Err(TensorError::ShapeMismatch {
                    detail: format!("batchnorm {name} has {len} channels, expected {c}"),
                });
            }
        }
        if self.var.iter().any(|&v| v < 0.0 || !v.is_finite()) {
            return Err(TensorError::ShapeMismatch {
                detail: "batchnorm variance must be finite and non-negative".to_owned(),
            });
        }
        Ok(())
    }

    /// The affine coefficients `(k_c, b_c)` such that
    /// `bn(x) = k_c·x + b_c` per channel — the first step of the Non-Conv
    /// fold.
    #[must_use]
    pub fn affine_coefficients(&self) -> Vec<(f32, f32)> {
        (0..self.channels())
            .map(|c| {
                let inv_sigma = 1.0 / (self.var[c] + self.eps).sqrt();
                let k = self.gamma[c] * inv_sigma;
                let b = self.beta[c] - self.gamma[c] * self.mean[c] * inv_sigma;
                (k, b)
            })
            .collect()
    }

    /// Applies the normalization to a feature map.
    ///
    /// # Panics
    ///
    /// Panics if channel counts disagree.
    #[must_use]
    pub fn apply(&self, x: &Tensor3<f32>) -> Tensor3<f32> {
        assert_eq!(x.channels(), self.channels(), "batchnorm channel mismatch");
        let coeff = self.affine_coefficients();
        let (c, h, w) = x.shape();
        Tensor3::from_fn(c, h, w, |ci, hi, wi| {
            let (k, b) = coeff[ci];
            k * x[(ci, hi, wi)] + b
        })
    }
}

/// ReLU: `max(x, 0)` elementwise.
#[must_use]
pub fn relu(x: &Tensor3<f32>) -> Tensor3<f32> {
    x.map(|&v| v.max(0.0))
}

/// Global average pooling: collapses each channel plane to its mean.
#[must_use]
pub fn global_avg_pool(x: &Tensor3<f32>) -> Vec<f32> {
    let (c, h, w) = x.shape();
    let n = (h * w) as f32;
    (0..c)
        .map(|ci| {
            let mut sum = 0.0;
            for hi in 0..h {
                for wi in 0..w {
                    sum += x[(ci, hi, wi)];
                }
            }
            sum / n
        })
        .collect()
}

/// Fully-connected layer: `y = W·x + b` with `W` of shape `out×in`.
///
/// # Panics
///
/// Panics if dimensions disagree.
#[must_use]
pub fn linear(x: &[f32], weights: &[f32], bias: &[f32], out: usize) -> Vec<f32> {
    let n = x.len();
    assert_eq!(weights.len(), out * n, "weight matrix must be out*in");
    assert_eq!(bias.len(), out, "bias must have out entries");
    (0..out)
        .map(|o| {
            let mut acc = bias[o];
            for (i, &xi) in x.iter().enumerate() {
                acc += weights[o * n + i] * xi;
            }
            acc
        })
        .collect()
}

/// Summary statistics of a value collection, used by quantization observers
/// and by the sparsity-shaping machinery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Minimum value.
    pub min: f32,
    /// Maximum value.
    pub max: f32,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
}

impl Stats {
    /// Computes statistics over `values`.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    #[must_use]
    pub fn compute(values: &[f32]) -> Self {
        assert!(!values.is_empty(), "stats of empty slice");
        let mut min = f32::INFINITY;
        let mut max = f32::NEG_INFINITY;
        let mut sum = 0.0f64;
        for &v in values {
            min = min.min(v);
            max = max.max(v);
            sum += f64::from(v);
        }
        let mean = sum / values.len() as f64;
        let var = values
            .iter()
            .map(|&v| (f64::from(v) - mean).powi(2))
            .sum::<f64>()
            / values.len() as f64;
        Self {
            min,
            max,
            mean,
            std: var.sqrt(),
        }
    }

    /// Largest absolute value.
    #[must_use]
    pub fn max_abs(&self) -> f32 {
        self.min.abs().max(self.max.abs())
    }
}

/// The `q`-th quantile (0 ≤ q ≤ 1) of `values`, by sorting (nearest-rank).
///
/// # Panics
///
/// Panics if `values` is empty or `q` is outside `[0, 1]`.
#[must_use]
pub fn quantile(values: &[f32], q: f64) -> f32 {
    assert!(!values.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile fraction out of range");
    let mut sorted: Vec<f32> = values.to_vec();
    sorted.sort_by(f32::total_cmp);
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Fraction of `values` that are `<= 0` — predicts post-ReLU zero fraction.
///
/// # Panics
///
/// Panics if `values` is empty.
#[must_use]
pub fn nonpositive_fraction(values: &[f32]) -> f64 {
    assert!(!values.is_empty(), "fraction of empty slice");
    values.iter().filter(|&&v| v <= 0.0).count() as f64 / values.len() as f64
}

/// Whether every byte of an int8 run is zero, scanned in `u64` words.
///
/// The zero-run scan behind the engines' skip-on-zero fast paths: post-ReLU
/// activation tiles are mostly zero (the paper's Fig. 11 measures up to
/// 97.4 %), and a whole-run check costs one word compare per 8 elements —
/// far below the MAC work it lets the caller skip. An empty run is
/// vacuously all-zero.
#[must_use]
pub fn all_zero_i8(values: &[i8]) -> bool {
    let mut words = values.chunks_exact(8);
    for word in &mut words {
        let mut bytes = [0u8; 8];
        for (dst, &src) in bytes.iter_mut().zip(word) {
            *dst = src as u8;
        }
        if u64::from_ne_bytes(bytes) != 0 {
            return false;
        }
    }
    words.remainder().iter().all(|&v| v == 0)
}

/// Occupancy bitmask of an int8 run viewed as rows of `row_len` elements:
/// bit `r` is set iff row `r` contains any nonzero value. A trailing
/// partial row (when `values.len()` is not a multiple of `row_len`) counts
/// as a row of its own.
///
/// The engines use this on a `(channels × pixels)` activation tile to find
/// the channels a dot-product lane can skip entirely; the weight-side twin
/// is precomputed per layer in the slicing plan.
///
/// # Panics
///
/// Panics if `row_len` is zero or the mask would need more than 64 rows.
#[must_use]
pub fn nonzero_row_mask_i8(values: &[i8], row_len: usize) -> u64 {
    assert!(row_len > 0, "row length must be non-zero");
    assert!(
        values.len().div_ceil(row_len) <= 64,
        "occupancy mask supports at most 64 rows"
    );
    let mut mask = 0u64;
    let mut r = 0;
    let mut rest = values;
    // Word-at-a-time fast paths for the engine tile rows (Tn·Tm = 4 or 8
    // pixels): one u64 load tests two rows (or one), keeping the per-tile
    // occupancy scan a small fraction of the tile's MAC work.
    if row_len == 4 || row_len == 8 {
        let mut words = rest.chunks_exact(8);
        for word in &mut words {
            let mut bytes = [0u8; 8];
            for (dst, &src) in bytes.iter_mut().zip(word) {
                *dst = src as u8;
            }
            // Low word half = first row half (from_le_bytes pins byte
            // order regardless of host endianness).
            let x = u64::from_le_bytes(bytes);
            if row_len == 4 {
                mask |= u64::from(x & 0xFFFF_FFFF != 0) << r;
                mask |= u64::from(x >> 32 != 0) << (r + 1);
                r += 2;
            } else {
                mask |= u64::from(x != 0) << r;
                r += 1;
            }
        }
        rest = words.remainder();
    }
    for row in rest.chunks(row_len) {
        if !all_zero_i8(row) {
            mask |= 1 << r;
        }
        r += 1;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    #[test]
    fn identity_bn_is_identity_up_to_eps() {
        let x = rng::synthetic_image(3, 4, 4, 1);
        let bn = BatchNorm::identity(3);
        let y = bn.apply(&x);
        for (a, b) in x.as_slice().iter().zip(y.as_slice()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn bn_standardizes_constant_offset() {
        // x with mean 5 var 4 per channel: bn with μ=5, σ²=4, γ=1, β=0 gives
        // (x-5)/2.
        let x = Tensor3::from_fn(1, 2, 2, |_, h, w| 5.0 + (h * 2 + w) as f32 * 2.0 - 3.0);
        let bn = BatchNorm {
            gamma: vec![1.0],
            beta: vec![0.0],
            mean: vec![5.0],
            var: vec![4.0],
            eps: 0.0,
        };
        let y = bn.apply(&x);
        for ((_, h, w), &v) in y.indexed_iter() {
            let expect = ((h * 2 + w) as f32 * 2.0 - 3.0) / 2.0;
            assert!((v - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn affine_coefficients_match_definition() {
        let bn = BatchNorm {
            gamma: vec![2.0],
            beta: vec![1.0],
            mean: vec![3.0],
            var: vec![0.25],
            eps: 0.0,
        };
        let (k, b) = bn.affine_coefficients()[0];
        assert!((k - 4.0).abs() < 1e-6); // 2/0.5
        assert!((b - (1.0 - 2.0 * 3.0 / 0.5)).abs() < 1e-5); // 1 - 12 = -11
    }

    #[test]
    fn bn_validate_catches_mismatch_and_negative_var() {
        let mut bn = BatchNorm::identity(4);
        assert!(bn.validate(4).is_ok());
        assert!(bn.validate(5).is_err());
        bn.var[2] = -1.0;
        assert!(bn.validate(4).is_err());
    }

    #[test]
    fn relu_clamps_negatives_only() {
        let x = Tensor3::from_fn(1, 1, 4, |_, _, w| w as f32 - 2.0);
        let y = relu(&x);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn global_avg_pool_means_per_channel() {
        let x = Tensor3::from_fn(2, 2, 2, |c, h, w| (c * 4 + h * 2 + w) as f32);
        let p = global_avg_pool(&x);
        assert_eq!(p, vec![1.5, 5.5]);
    }

    #[test]
    fn linear_reference() {
        let y = linear(
            &[1.0, 2.0],
            &[1.0, 0.0, 0.0, 1.0, 1.0, 1.0],
            &[0.0, 0.0, 0.5],
            3,
        );
        assert_eq!(y, vec![1.0, 2.0, 3.5]);
    }

    #[test]
    #[should_panic(expected = "out*in")]
    fn linear_rejects_bad_weight_size() {
        let _ = linear(&[1.0, 2.0], &[1.0], &[0.0], 1);
    }

    #[test]
    fn stats_reference() {
        let s = Stats::compute(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.mean, 2.5);
        assert!((s.std - 1.118_033_988_749_895).abs() < 1e-9);
        assert_eq!(s.max_abs(), 4.0);
    }

    #[test]
    fn quantile_nearest_rank() {
        let v = [5.0f32, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 5.0);
        assert_eq!(quantile(&v, 0.5), 3.0);
    }

    #[test]
    fn nonpositive_fraction_counts() {
        assert_eq!(nonpositive_fraction(&[-1.0, 0.0, 1.0, 2.0]), 0.5);
        assert_eq!(nonpositive_fraction(&[1.0]), 0.0);
    }

    #[test]
    fn all_zero_scan_matches_elementwise_check() {
        // Lengths straddling the 8-byte word boundary, with the nonzero in
        // every position: the word path and the remainder path both see it.
        for len in [0usize, 1, 7, 8, 9, 16, 23] {
            let zeros = vec![0i8; len];
            assert!(all_zero_i8(&zeros), "len {len}");
            for hot in 0..len {
                let mut v = zeros.clone();
                v[hot] = -1;
                assert!(!all_zero_i8(&v), "len {len} hot {hot}");
            }
        }
    }

    #[test]
    fn nonzero_row_mask_flags_occupied_rows() {
        // 4 rows of 4: rows 1 and 3 occupied.
        let mut v = vec![0i8; 16];
        v[4] = 3;
        v[15] = -7;
        assert_eq!(nonzero_row_mask_i8(&v, 4), 0b1010);
        assert_eq!(nonzero_row_mask_i8(&[0i8; 16], 4), 0);
        // A trailing partial row gets its own bit.
        let mut v = vec![0i8; 10];
        v[9] = 1;
        assert_eq!(nonzero_row_mask_i8(&v, 4), 0b100);
    }

    #[test]
    #[should_panic(expected = "at most 64 rows")]
    fn nonzero_row_mask_rejects_too_many_rows() {
        let _ = nonzero_row_mask_i8(&[0i8; 65], 1);
    }

    #[test]
    fn nonzero_row_mask_word_paths_match_naive_reference() {
        // Sweep lengths around the word boundaries and every hot position,
        // for the specialized row lengths (4, 8) and generic ones.
        let naive = |values: &[i8], row_len: usize| -> u64 {
            let mut mask = 0u64;
            for (r, row) in values.chunks(row_len).enumerate() {
                if row.iter().any(|&v| v != 0) {
                    mask |= 1 << r;
                }
            }
            mask
        };
        for row_len in [1usize, 3, 4, 5, 8] {
            for len in 0..=40 {
                let mut v = vec![0i8; len];
                assert_eq!(nonzero_row_mask_i8(&v, row_len), 0, "zeros len={len}");
                for hot in 0..len {
                    v[hot] = -1;
                    assert_eq!(
                        nonzero_row_mask_i8(&v, row_len),
                        naive(&v, row_len),
                        "row_len={row_len} len={len} hot={hot}"
                    );
                    v[hot] = 0;
                }
            }
        }
    }
}
