//! Error type for tensor construction and shape checking.

use std::error::Error;
use std::fmt;

/// Error produced by tensor constructors and shape-checked operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// The data length does not match the product of the dimensions.
    LengthMismatch {
        /// Expected element count (product of dims).
        expected: usize,
        /// Actual data length supplied.
        actual: usize,
    },
    /// A dimension was zero where a non-empty tensor is required.
    EmptyDimension,
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the conflict.
        detail: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "data length {actual} does not match shape volume {expected}"
                )
            }
            TensorError::EmptyDimension => write!(f, "tensor dimensions must be non-zero"),
            TensorError::ShapeMismatch { detail } => write!(f, "shape mismatch: {detail}"),
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_both_lengths() {
        let e = TensorError::LengthMismatch {
            expected: 12,
            actual: 7,
        };
        let s = e.to_string();
        assert!(s.contains("12") && s.contains('7'));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn check<T: Send + Sync + 'static>() {}
        check::<TensorError>();
    }
}
