//! Reference convolution kernels (golden models).
//!
//! These are deliberately straightforward loop-nest implementations: they
//! define *correct* results for standard, depthwise and pointwise
//! convolution, against which the EDEA engine simulators are verified
//! bit-exactly (integer variants) or to floating-point tolerance.
//!
//! Two independent implementations of standard convolution are provided
//! (direct and im2col) so the reference itself is cross-checked.

use crate::{Tensor3, Tensor4};

/// Output spatial size of a convolution: `(in + 2*pad - k)/stride + 1`.
///
/// # Panics
///
/// Panics if the window does not fit (`in + 2*pad < k`) or `stride == 0`.
///
/// # Example
///
/// ```
/// use edea_tensor::conv::out_dim;
///
/// assert_eq!(out_dim(32, 3, 1, 1), 32); // same-padding stride 1
/// assert_eq!(out_dim(32, 3, 2, 1), 16); // stride 2 halves
/// assert_eq!(out_dim(4, 3, 1, 0), 2);   // valid padding
/// ```
#[must_use]
pub fn out_dim(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    assert!(stride > 0, "stride must be positive");
    assert!(
        input + 2 * pad >= kernel,
        "window {kernel} does not fit input {input} with pad {pad}"
    );
    (input + 2 * pad - kernel) / stride + 1
}

/// Standard 2-D convolution, `f32`, direct loop nest.
///
/// `input` is `C×H×W`, `weights` are `K×C×Kh×Kw`; output is `K×H'×W'`.
///
/// # Panics
///
/// Panics if `weights.channels() != input.channels()` or the window does not
/// fit.
#[must_use]
pub fn conv2d_f32(
    input: &Tensor3<f32>,
    weights: &Tensor4<f32>,
    stride: usize,
    pad: usize,
) -> Tensor3<f32> {
    let (c_in, h_in, w_in) = input.shape();
    let (k, wc, kh, kw) = weights.shape();
    assert_eq!(wc, c_in, "weight channels {wc} != input channels {c_in}");
    let h_out = out_dim(h_in, kh, stride, pad);
    let w_out = out_dim(w_in, kw, stride, pad);
    let padded = input.zero_padded(pad);
    let mut out = Tensor3::<f32>::zeros(k, h_out, w_out);
    for ko in 0..k {
        for ho in 0..h_out {
            for wo in 0..w_out {
                let mut acc = 0.0f32;
                for ci in 0..c_in {
                    for dh in 0..kh {
                        for dw in 0..kw {
                            acc += padded[(ci, ho * stride + dh, wo * stride + dw)]
                                * weights[(ko, ci, dh, dw)];
                        }
                    }
                }
                out[(ko, ho, wo)] = acc;
            }
        }
    }
    out
}

/// Standard 2-D convolution via im2col + matrix multiply — an independent
/// second implementation used to validate [`conv2d_f32`].
///
/// # Panics
///
/// Same conditions as [`conv2d_f32`].
#[must_use]
pub fn conv2d_im2col_f32(
    input: &Tensor3<f32>,
    weights: &Tensor4<f32>,
    stride: usize,
    pad: usize,
) -> Tensor3<f32> {
    let (c_in, h_in, w_in) = input.shape();
    let (k, wc, kh, kw) = weights.shape();
    assert_eq!(wc, c_in, "weight channels {wc} != input channels {c_in}");
    let h_out = out_dim(h_in, kh, stride, pad);
    let w_out = out_dim(w_in, kw, stride, pad);
    let padded = input.zero_padded(pad);
    let cols = c_in * kh * kw;
    let rows = h_out * w_out;
    // Column matrix: rows = output pixels, cols = unrolled receptive field.
    let mut col = vec![0.0f32; rows * cols];
    for ho in 0..h_out {
        for wo in 0..w_out {
            let r = ho * w_out + wo;
            let mut cidx = 0;
            for ci in 0..c_in {
                for dh in 0..kh {
                    for dw in 0..kw {
                        col[r * cols + cidx] = padded[(ci, ho * stride + dh, wo * stride + dw)];
                        cidx += 1;
                    }
                }
            }
        }
    }
    let mut out = Tensor3::<f32>::zeros(k, h_out, w_out);
    for ko in 0..k {
        let wbase: Vec<f32> = (0..cols)
            .map(|i| {
                let ci = i / (kh * kw);
                let rest = i % (kh * kw);
                weights[(ko, ci, rest / kw, rest % kw)]
            })
            .collect();
        for r in 0..rows {
            let mut acc = 0.0f32;
            for i in 0..cols {
                acc += col[r * cols + i] * wbase[i];
            }
            out[(ko, r / w_out, r % w_out)] = acc;
        }
    }
    out
}

/// Depthwise 2-D convolution, `f32`: one `Kh×Kw` filter per channel.
///
/// `weights` are `C×1×Kh×Kw` (kernel index = channel index).
///
/// # Panics
///
/// Panics if `weights.kernels() != input.channels()`, if
/// `weights.channels() != 1`, or the window does not fit.
#[must_use]
pub fn depthwise_conv2d_f32(
    input: &Tensor3<f32>,
    weights: &Tensor4<f32>,
    stride: usize,
    pad: usize,
) -> Tensor3<f32> {
    let (c_in, h_in, w_in) = input.shape();
    let (k, wc, kh, kw) = weights.shape();
    assert_eq!(k, c_in, "depthwise kernel count {k} != channels {c_in}");
    assert_eq!(
        wc, 1,
        "depthwise weights must have a single channel, got {wc}"
    );
    let h_out = out_dim(h_in, kh, stride, pad);
    let w_out = out_dim(w_in, kw, stride, pad);
    let padded = input.zero_padded(pad);
    let mut out = Tensor3::<f32>::zeros(c_in, h_out, w_out);
    for c in 0..c_in {
        for ho in 0..h_out {
            for wo in 0..w_out {
                let mut acc = 0.0f32;
                for dh in 0..kh {
                    for dw in 0..kw {
                        acc += padded[(c, ho * stride + dh, wo * stride + dw)]
                            * weights[(c, 0, dh, dw)];
                    }
                }
                out[(c, ho, wo)] = acc;
            }
        }
    }
    out
}

/// Pointwise (1×1) convolution, `f32`: `weights` are `K×C×1×1`.
///
/// # Panics
///
/// Panics if shapes are inconsistent.
#[must_use]
pub fn pointwise_conv2d_f32(input: &Tensor3<f32>, weights: &Tensor4<f32>) -> Tensor3<f32> {
    let (c_in, h, w) = input.shape();
    let (k, wc, kh, kw) = weights.shape();
    assert_eq!(wc, c_in, "weight channels {wc} != input channels {c_in}");
    assert_eq!((kh, kw), (1, 1), "pointwise kernels must be 1x1");
    let mut out = Tensor3::<f32>::zeros(k, h, w);
    for ko in 0..k {
        for ho in 0..h {
            for wo in 0..w {
                let mut acc = 0.0f32;
                for ci in 0..c_in {
                    acc += input[(ci, ho, wo)] * weights[(ko, ci, 0, 0)];
                }
                out[(ko, ho, wo)] = acc;
            }
        }
    }
    out
}

/// Integer depthwise convolution: int8 × int8 → i32 accumulators.
///
/// This is the *functional* golden model for the DWC engine: the engine must
/// produce exactly these accumulator values before the Non-Conv stage.
///
/// # Panics
///
/// Same conditions as [`depthwise_conv2d_f32`].
#[must_use]
pub fn depthwise_conv2d_i8(
    input: &Tensor3<i8>,
    weights: &Tensor4<i8>,
    stride: usize,
    pad: usize,
) -> Tensor3<i32> {
    let (c_in, h_in, w_in) = input.shape();
    let (k, wc, kh, kw) = weights.shape();
    assert_eq!(k, c_in, "depthwise kernel count {k} != channels {c_in}");
    assert_eq!(
        wc, 1,
        "depthwise weights must have a single channel, got {wc}"
    );
    let h_out = out_dim(h_in, kh, stride, pad);
    let w_out = out_dim(w_in, kw, stride, pad);
    let padded = input.zero_padded(pad);
    let mut out = Tensor3::<i32>::zeros(c_in, h_out, w_out);
    for c in 0..c_in {
        for ho in 0..h_out {
            for wo in 0..w_out {
                let mut acc = 0i32;
                for dh in 0..kh {
                    for dw in 0..kw {
                        acc += i32::from(padded[(c, ho * stride + dh, wo * stride + dw)])
                            * i32::from(weights[(c, 0, dh, dw)]);
                    }
                }
                out[(c, ho, wo)] = acc;
            }
        }
    }
    out
}

/// Integer pointwise convolution: int8 × int8 → i32 accumulators.
///
/// The functional golden model for the PWC engine.
///
/// # Panics
///
/// Same conditions as [`pointwise_conv2d_f32`].
#[must_use]
pub fn pointwise_conv2d_i8(input: &Tensor3<i8>, weights: &Tensor4<i8>) -> Tensor3<i32> {
    let (c_in, h, w) = input.shape();
    let (k, wc, kh, kw) = weights.shape();
    assert_eq!(wc, c_in, "weight channels {wc} != input channels {c_in}");
    assert_eq!((kh, kw), (1, 1), "pointwise kernels must be 1x1");
    let mut out = Tensor3::<i32>::zeros(k, h, w);
    for ko in 0..k {
        for ho in 0..h {
            for wo in 0..w {
                let mut acc = 0i32;
                for ci in 0..c_in {
                    acc += i32::from(input[(ci, ho, wo)]) * i32::from(weights[(ko, ci, 0, 0)]);
                }
                out[(ko, ho, wo)] = acc;
            }
        }
    }
    out
}

/// Standard integer convolution (used for the MobileNetV1 stem layer).
///
/// # Panics
///
/// Same conditions as [`conv2d_f32`].
#[must_use]
pub fn conv2d_i8(
    input: &Tensor3<i8>,
    weights: &Tensor4<i8>,
    stride: usize,
    pad: usize,
) -> Tensor3<i32> {
    let (c_in, h_in, w_in) = input.shape();
    let (k, wc, kh, kw) = weights.shape();
    assert_eq!(wc, c_in, "weight channels {wc} != input channels {c_in}");
    let h_out = out_dim(h_in, kh, stride, pad);
    let w_out = out_dim(w_in, kw, stride, pad);
    let padded = input.zero_padded(pad);
    let mut out = Tensor3::<i32>::zeros(k, h_out, w_out);
    for ko in 0..k {
        for ho in 0..h_out {
            for wo in 0..w_out {
                let mut acc = 0i32;
                for ci in 0..c_in {
                    for dh in 0..kh {
                        for dw in 0..kw {
                            acc += i32::from(padded[(ci, ho * stride + dh, wo * stride + dw)])
                                * i32::from(weights[(ko, ci, dh, dw)]);
                        }
                    }
                }
                out[(ko, ho, wo)] = acc;
            }
        }
    }
    out
}

/// Composes a depthwise and a pointwise convolution into the equivalent
/// *standard* convolution weights — the mathematical identity behind DSC
/// (`SC ≈ DWC ∘ PWC` when the DSC is exact). Used by tests to validate the
/// decomposition reasoning of the paper's Sec. I.
///
/// Returns `K×C×Kh×Kw` weights such that
/// `conv2d(x, returned) == pointwise(depthwise(x, dw), pw)` for all `x`
/// (exactly in ℝ; to f32 round-off in practice).
///
/// # Panics
///
/// Panics if shapes are inconsistent.
#[must_use]
pub fn compose_dsc_weights(dw: &Tensor4<f32>, pw: &Tensor4<f32>) -> Tensor4<f32> {
    let (c, one, kh, kw) = dw.shape();
    assert_eq!(one, 1, "depthwise weights must have a single channel");
    let (k, pc, ph, pww) = pw.shape();
    assert_eq!(
        pc, c,
        "pointwise channels must match depthwise kernel count"
    );
    assert_eq!((ph, pww), (1, 1), "pointwise kernels must be 1x1");
    Tensor4::from_fn(k, c, kh, kw, |ko, ci, dh, dwi| {
        pw[(ko, ci, 0, 0)] * dw[(ci, 0, dh, dwi)]
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    #[test]
    fn out_dim_reference_cases() {
        assert_eq!(out_dim(32, 3, 1, 1), 32);
        assert_eq!(out_dim(16, 3, 2, 1), 8);
        assert_eq!(out_dim(2, 3, 1, 1), 2);
        assert_eq!(out_dim(4, 3, 2, 1), 2);
        assert_eq!(out_dim(5, 5, 1, 0), 1);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn out_dim_rejects_oversized_window() {
        let _ = out_dim(2, 5, 1, 0);
    }

    #[test]
    fn identity_kernel_passes_through() {
        let x = rng::synthetic_image(2, 5, 5, 3);
        // 1x1 standard conv with identity matrix weights.
        let w = Tensor4::from_fn(2, 2, 1, 1, |k, c, _, _| if k == c { 1.0 } else { 0.0 });
        let y = conv2d_f32(&x, &w, 1, 0);
        assert_eq!(y, x);
    }

    #[test]
    fn direct_matches_im2col() {
        let x = rng::synthetic_image(3, 9, 7, 1);
        let w = rng::kaiming_weights(4, 3, 3, 3, 2);
        for (stride, pad) in [(1, 1), (2, 1), (1, 0), (2, 0)] {
            let a = conv2d_f32(&x, &w, stride, pad);
            let b = conv2d_im2col_f32(&x, &w, stride, pad);
            assert_eq!(a.shape(), b.shape());
            for (av, bv) in a.as_slice().iter().zip(b.as_slice()) {
                assert!((av - bv).abs() < 1e-4, "stride={stride} pad={pad}");
            }
        }
    }

    #[test]
    fn depthwise_is_groupwise_standard_conv() {
        // A depthwise conv equals a standard conv whose cross-channel taps
        // are zero.
        let x = rng::synthetic_image(3, 6, 6, 5);
        let dw = rng::kaiming_weights(3, 1, 3, 3, 6);
        let equivalent = Tensor4::from_fn(
            3,
            3,
            3,
            3,
            |k, c, h, w| {
                if k == c {
                    dw[(k, 0, h, w)]
                } else {
                    0.0
                }
            },
        );
        let a = depthwise_conv2d_f32(&x, &dw, 1, 1);
        let b = conv2d_f32(&x, &equivalent, 1, 1);
        for (av, bv) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((av - bv).abs() < 1e-5);
        }
    }

    #[test]
    fn pointwise_is_1x1_standard_conv() {
        let x = rng::synthetic_image(4, 5, 5, 8);
        let pw = rng::kaiming_weights(6, 4, 1, 1, 9);
        let a = pointwise_conv2d_f32(&x, &pw);
        let b = conv2d_f32(&x, &pw, 1, 0);
        for (av, bv) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((av - bv).abs() < 1e-5);
        }
    }

    #[test]
    fn dsc_composition_identity() {
        // pointwise(depthwise(x)) == conv2d(x, composed) — the core DSC
        // algebra from the paper's introduction.
        let x = rng::synthetic_image(3, 8, 8, 10);
        let dw = rng::kaiming_weights(3, 1, 3, 3, 11);
        let pw = rng::kaiming_weights(5, 3, 1, 1, 12);
        let composed = compose_dsc_weights(&dw, &pw);
        for stride in [1, 2] {
            let via_dsc = pointwise_conv2d_f32(&depthwise_conv2d_f32(&x, &dw, stride, 1), &pw);
            let via_sc = conv2d_f32(&x, &composed, stride, 1);
            assert_eq!(via_dsc.shape(), via_sc.shape());
            for (a, b) in via_dsc.as_slice().iter().zip(via_sc.as_slice()) {
                assert!((a - b).abs() < 1e-4, "stride={stride}");
            }
        }
    }

    #[test]
    fn integer_convs_match_float_on_integral_data() {
        let xi =
            Tensor3::<i8>::from_fn(2, 6, 6, |c, h, w| ((c * 31 + h * 7 + w * 3) % 19) as i8 - 9);
        let wi = Tensor4::<i8>::from_fn(2, 1, 3, 3, |k, _, h, w| {
            ((k * 5 + h * 3 + w) % 11) as i8 - 5
        });
        let xf = xi.map(|&v| f32::from(v));
        let wf = wi.map(|&v| f32::from(v));
        let yi = depthwise_conv2d_i8(&xi, &wi, 2, 1);
        let yf = depthwise_conv2d_f32(&xf, &wf, 2, 1);
        for (a, b) in yi.as_slice().iter().zip(yf.as_slice()) {
            assert_eq!(*a as f32, *b);
        }

        let pw = Tensor4::<i8>::from_fn(3, 2, 1, 1, |k, c, _, _| (k as i8 - 1) * (c as i8 + 1));
        let ypi = pointwise_conv2d_i8(&xi, &pw);
        let ypf = pointwise_conv2d_f32(&xf, &pw.map(|&v| f32::from(v)));
        for (a, b) in ypi.as_slice().iter().zip(ypf.as_slice()) {
            assert_eq!(*a as f32, *b);
        }
    }

    #[test]
    fn conv2d_i8_matches_f32_reference() {
        let xi = Tensor3::<i8>::from_fn(3, 5, 5, |c, h, w| ((c + 2 * h + 3 * w) % 17) as i8 - 8);
        let wi = Tensor4::<i8>::from_fn(4, 3, 3, 3, |k, c, h, w| ((k + c + h + w) % 7) as i8 - 3);
        let yi = conv2d_i8(&xi, &wi, 2, 1);
        let yf = conv2d_f32(&xi.map(|&v| f32::from(v)), &wi.map(|&v| f32::from(v)), 2, 1);
        assert_eq!(yi.shape(), yf.shape());
        for (a, b) in yi.as_slice().iter().zip(yf.as_slice()) {
            assert_eq!(*a as f32, *b);
        }
    }

    #[test]
    fn stride2_halves_spatial_dims() {
        let x = rng::synthetic_image(1, 32, 32, 4);
        let w = rng::kaiming_weights(1, 1, 3, 3, 4);
        let y = depthwise_conv2d_f32(&x, &w, 2, 1);
        assert_eq!(y.shape(), (1, 16, 16));
    }

    #[test]
    fn padding_contributes_zeros_at_border() {
        // With an all-ones 3x3 kernel and all-ones 3x3 input, the center
        // output is 9 and the corners are 4 under same-padding.
        let x = Tensor3::<f32>::from_fn(1, 3, 3, |_, _, _| 1.0);
        let w = Tensor4::<f32>::from_fn(1, 1, 3, 3, |_, _, _, _| 1.0);
        let y = conv2d_f32(&x, &w, 1, 1);
        assert_eq!(y[(0, 1, 1)], 9.0);
        assert_eq!(y[(0, 0, 0)], 4.0);
        assert_eq!(y[(0, 0, 1)], 6.0);
    }
}
