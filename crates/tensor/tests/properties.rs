//! Property-based tests for tensors, quantization and reference kernels.

use edea_tensor::conv::{
    compose_dsc_weights, conv2d_f32, conv2d_im2col_f32, depthwise_conv2d_f32, depthwise_conv2d_i8,
    out_dim, pointwise_conv2d_f32, pointwise_conv2d_i8,
};
use edea_tensor::ops::{quantile, BatchNorm};
use edea_tensor::{rng, QuantParams, Tensor3, Tensor4};
use proptest::prelude::*;

fn small_i8_tensor3(c: usize, h: usize, w: usize) -> impl Strategy<Value = Tensor3<i8>> {
    prop::collection::vec(-128i8..=127, c * h * w)
        .prop_map(move |v| Tensor3::from_vec(v, c, h, w).expect("sized correctly"))
}

fn small_i8_tensor4(
    k: usize,
    c: usize,
    kh: usize,
    kw: usize,
) -> impl Strategy<Value = Tensor4<i8>> {
    prop::collection::vec(-128i8..=127, k * c * kh * kw)
        .prop_map(move |v| Tensor4::from_vec(v, k, c, kh, kw).expect("sized correctly"))
}

proptest! {
    /// out_dim is consistent with actually sliding a window.
    #[test]
    fn out_dim_counts_window_positions(input in 1usize..24, k in 1usize..5,
                                        stride in 1usize..3, pad in 0usize..2) {
        prop_assume!(input + 2 * pad >= k);
        let n = out_dim(input, k, stride, pad);
        // count positions p = 0, stride, 2*stride... with p + k <= input + 2*pad
        let mut count = 0;
        let mut p = 0;
        while p + k <= input + 2 * pad {
            count += 1;
            p += stride;
        }
        prop_assert_eq!(n, count);
    }

    /// Convolution is linear: conv(a*x) == a*conv(x) (exact for power-of-two a).
    #[test]
    fn conv_is_homogeneous(seed in 0u64..1000) {
        let x = rng::synthetic_image(2, 6, 6, seed);
        let w = rng::kaiming_weights(3, 2, 3, 3, seed + 1);
        let y1 = conv2d_f32(&x, &w, 1, 1);
        let x2 = x.map(|&v| v * 2.0);
        let y2 = conv2d_f32(&x2, &w, 1, 1);
        for (a, b) in y1.as_slice().iter().zip(y2.as_slice()) {
            prop_assert!((2.0 * a - b).abs() < 1e-4);
        }
    }

    /// Convolution is additive in the input.
    #[test]
    fn conv_is_additive(seed in 0u64..500) {
        let xa = rng::synthetic_image(2, 5, 5, seed);
        let xb = rng::synthetic_image(2, 5, 5, seed + 77);
        let w = rng::kaiming_weights(2, 2, 3, 3, seed + 2);
        let sum = Tensor3::from_fn(2, 5, 5, |c, h, wi| xa[(c, h, wi)] + xb[(c, h, wi)]);
        let ys = conv2d_f32(&sum, &w, 1, 1);
        let ya = conv2d_f32(&xa, &w, 1, 1);
        let yb = conv2d_f32(&xb, &w, 1, 1);
        for i in 0..ys.len() {
            prop_assert!((ys.as_slice()[i] - ya.as_slice()[i] - yb.as_slice()[i]).abs() < 1e-4);
        }
    }

    /// Direct and im2col convolutions agree on random integer-valued data
    /// (exact in f32 because all intermediates are small integers).
    #[test]
    fn direct_equals_im2col_exact(x in small_i8_tensor3(2, 5, 5),
                                  w in small_i8_tensor4(3, 2, 3, 3),
                                  stride in 1usize..3) {
        let xf = x.map(|&v| f32::from(v));
        let wf = w.map(|&v| f32::from(v));
        let a = conv2d_f32(&xf, &wf, stride, 1);
        let b = conv2d_im2col_f32(&xf, &wf, stride, 1);
        prop_assert_eq!(a, b);
    }

    /// Integer depthwise conv matches the f32 reference exactly on int data.
    #[test]
    fn depthwise_int_matches_float(x in small_i8_tensor3(3, 6, 6),
                                   w in small_i8_tensor4(3, 1, 3, 3),
                                   stride in 1usize..3) {
        let yi = depthwise_conv2d_i8(&x, &w, stride, 1);
        let yf = depthwise_conv2d_f32(&x.map(|&v| f32::from(v)), &w.map(|&v| f32::from(v)), stride, 1);
        prop_assert_eq!(yi.shape(), yf.shape());
        for (a, b) in yi.as_slice().iter().zip(yf.as_slice()) {
            prop_assert_eq!(*a as f32, *b);
        }
    }

    /// Integer pointwise conv matches the f32 reference exactly on int data.
    #[test]
    fn pointwise_int_matches_float(x in small_i8_tensor3(4, 3, 3),
                                   w in small_i8_tensor4(5, 4, 1, 1)) {
        let yi = pointwise_conv2d_i8(&x, &w);
        let yf = pointwise_conv2d_f32(&x.map(|&v| f32::from(v)), &w.map(|&v| f32::from(v)));
        for (a, b) in yi.as_slice().iter().zip(yf.as_slice()) {
            prop_assert_eq!(*a as f32, *b);
        }
    }

    /// The DSC composition identity holds for random weights.
    #[test]
    fn dsc_equals_composed_standard_conv(seed in 0u64..300) {
        let x = rng::synthetic_image(3, 6, 6, seed);
        let dw = rng::kaiming_weights(3, 1, 3, 3, seed + 5);
        let pw = rng::kaiming_weights(4, 3, 1, 1, seed + 6);
        let via_dsc = pointwise_conv2d_f32(&depthwise_conv2d_f32(&x, &dw, 1, 1), &pw);
        let via_sc = conv2d_f32(&x, &compose_dsc_weights(&dw, &pw), 1, 1);
        for (a, b) in via_dsc.as_slice().iter().zip(via_sc.as_slice()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    /// Quantize/dequantize error is bounded by scale/2 for in-range values.
    #[test]
    fn quant_round_trip_bounded(scale in 0.001f32..1.0, x in -10.0f32..10.0) {
        let q = QuantParams::new(scale).unwrap();
        prop_assume!(x.abs() <= scale * 127.0);
        let back = q.dequantize(q.quantize(x));
        prop_assert!((back - x).abs() <= scale / 2.0 + scale * 1e-4);
    }

    /// Quantization is monotone.
    #[test]
    fn quantization_monotone(scale in 0.01f32..2.0, a in -50.0f32..50.0, d in 0.0f32..20.0) {
        let q = QuantParams::new(scale).unwrap();
        prop_assert!(q.quantize(a) <= q.quantize(a + d));
    }

    /// BN followed by its inverse affine is the identity.
    #[test]
    fn bn_affine_is_exactly_bn(seed in 0u64..300) {
        let x = rng::synthetic_image(2, 4, 4, seed);
        let bn = BatchNorm {
            gamma: vec![1.3, -0.7],
            beta: vec![0.2, 1.0],
            mean: vec![-0.1, 0.4],
            var: vec![0.5, 2.0],
            eps: 1e-5,
        };
        let direct = bn.apply(&x);
        let coeff = bn.affine_coefficients();
        for ((c, h, w), &v) in x.indexed_iter() {
            let (k, b) = coeff[c];
            prop_assert!((direct[(c, h, w)] - (k * v + b)).abs() < 1e-5);
        }
    }

    /// quantile(., 0) is min, quantile(., 1) is max, and it is monotone in q.
    #[test]
    fn quantile_properties(values in prop::collection::vec(-100f32..100.0, 1..200),
                           q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let lo = q1.min(q2);
        let hi = q1.max(q2);
        prop_assert!(quantile(&values, lo) <= quantile(&values, hi));
        let min = values.iter().cloned().fold(f32::INFINITY, f32::min);
        let max = values.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        prop_assert_eq!(quantile(&values, 0.0), min);
        prop_assert_eq!(quantile(&values, 1.0), max);
    }

    /// Channel slicing then re-reading matches the original contents.
    #[test]
    fn channel_slice_consistent(x in small_i8_tensor3(6, 3, 3), c0 in 0usize..4, n in 1usize..3) {
        prop_assume!(c0 + n <= 6);
        let s = x.channel_slice(c0, n);
        for c in 0..n {
            for h in 0..3 {
                for w in 0..3 {
                    prop_assert_eq!(s[(c, h, w)], x[(c0 + c, h, w)]);
                }
            }
        }
    }
}
