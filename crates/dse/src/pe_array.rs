//! PE-array sizing (paper Fig. 2a, Table II "PE Array" column).

use crate::TileConfig;

/// MAC count of the DWC PE array: `Td × H × W × Tn × Tm`.
///
/// # Example
///
/// ```
/// use edea_dse::{pe_array, TileConfig};
///
/// // The paper's configuration yields the 288-MAC DWC engine of Fig. 5a.
/// assert_eq!(pe_array::dwc_macs(&TileConfig::edea()), 288);
/// ```
#[must_use]
pub fn dwc_macs(cfg: &TileConfig) -> u64 {
    (cfg.td * cfg.kernel * cfg.kernel * cfg.tn * cfg.tm) as u64
}

/// MAC count of the PWC PE array: `Td × Tk × Tn × Tm`.
///
/// # Example
///
/// ```
/// use edea_dse::{pe_array, TileConfig};
///
/// // The paper's configuration yields the 512-MAC PWC engine of Fig. 5b.
/// assert_eq!(pe_array::pwc_macs(&TileConfig::edea()), 512);
/// ```
#[must_use]
pub fn pwc_macs(cfg: &TileConfig) -> u64 {
    (cfg.td * cfg.tk * cfg.tn * cfg.tm) as u64
}

/// Total MAC count of both engines (the "PE Array Size" of Fig. 2a).
#[must_use]
pub fn total_macs(cfg: &TileConfig) -> u64 {
    dwc_macs(cfg) + pwc_macs(cfg)
}

/// Ratio of PWC to DWC MACs — the paper quotes 1.8× (512/288) and observes
/// the layout area ratio tracks it at ≈1.7×.
#[must_use]
pub fn pwc_to_dwc_ratio(cfg: &TileConfig) -> f64 {
    pwc_macs(cfg) as f64 / dwc_macs(cfg) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiling::{exploration_groups, table1_cases};

    #[test]
    fn edea_sizes_match_fig5() {
        let cfg = TileConfig::edea();
        assert_eq!(dwc_macs(&cfg), 288);
        assert_eq!(pwc_macs(&cfg), 512);
        assert_eq!(total_macs(&cfg), 800); // Table III "PE Count"
        assert!((pwc_to_dwc_ratio(&cfg) - 512.0 / 288.0).abs() < 1e-12);
    }

    #[test]
    fn pe_size_is_linear_in_tile_dims() {
        // Paper: "The required PE array size exhibits a linear relationship
        // with the tiling size Tn, Tm, Td and Tk."
        let base = TileConfig::new(1, 1, 4, 4, 3);
        let double_td = TileConfig::new(1, 1, 8, 4, 3);
        let double_tk = TileConfig::new(1, 1, 4, 8, 3);
        let double_tn = TileConfig::new(2, 1, 4, 4, 3);
        assert_eq!(dwc_macs(&double_td), 2 * dwc_macs(&base));
        assert_eq!(pwc_macs(&double_tk), 2 * pwc_macs(&base));
        assert_eq!(total_macs(&double_tn), 2 * total_macs(&base));
    }

    #[test]
    fn fig2a_range_is_reproduced() {
        // Fig. 2a's axis spans 0..800; the maximum over all groups × cases
        // must be exactly 800 (Case 6, Tn=Tm=2) and the minimum 52
        // (Case 1, Tn=Tm=1: 36 + 16).
        let mut max = 0;
        let mut min = u64::MAX;
        for group in exploration_groups() {
            for case in table1_cases() {
                let size = total_macs(&group.config(case));
                max = max.max(size);
                min = min.min(size);
            }
        }
        assert_eq!(max, 800);
        assert_eq!(min, 52);
    }

    #[test]
    fn pe_size_is_independent_of_loop_order() {
        for case in table1_cases() {
            let groups = exploration_groups();
            let la = total_macs(&groups[2].config(case)); // La, Tn=2
            let lb = total_macs(&groups[3].config(case)); // Lb, Tn=2
            assert_eq!(la, lb);
        }
    }
}
