//! Convolution loop nests and the two explored orders.

use std::fmt;

/// The five convolution loop levels of the paper's Sec. II, innermost first:
///
/// 1. `Window` — MACs within one convolution window (`Tr×Tc` for DWC,
///    `Tn×Tm` for PWC).
/// 2. `ChannelTile` — the `Td` channels inside one tile.
/// 3. `Spatial` — scanning the feature map along `R×C` (DWC) / `N×M` (PWC).
/// 4. `ChannelOuter` — iterating channel tiles across the full depth `D`.
/// 5. `KernelOuter` — iterating kernel tiles across `K` (PWC only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Loop {
    /// Loop1: MAC within a convolution window.
    Window,
    /// Loop2: across the tile depth `Td`.
    ChannelTile,
    /// Loop3: across the feature-map spatial extent.
    Spatial,
    /// Loop4: across the ifmap depth `D` in steps of `Td`.
    ChannelOuter,
    /// Loop5: across the ofmap depth `K` in steps of `Tk` (PWC only).
    KernelOuter,
}

impl fmt::Display for Loop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Loop::Window => "Loop1 (window MAC)",
            Loop::ChannelTile => "Loop2 (Td)",
            Loop::Spatial => "Loop3 (spatial)",
            Loop::ChannelOuter => "Loop4 (D)",
            Loop::KernelOuter => "Loop5 (K)",
        };
        f.write_str(name)
    }
}

/// The two loop orders explored by the paper (inner → outer):
///
/// * `La`: Loop1 → Loop2 → **Loop3 → Loop4** → Loop5 — spatial scan inside
///   the channel loop. Weights stay resident while the map is scanned
///   (weight-stationary): weights are read once, activations are re-read.
/// * `Lb`: Loop1 → Loop2 → **Loop4 → Loop3** → Loop5 — channel loop inside
///   the spatial scan. Activations stay resident (activation-stationary):
///   activations are read once, weights are re-read per spatial tile.
///
/// Paper: "The loop order La consistently demonstrates higher activation
/// access count, while Lb consistently exhibits higher weight access count."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoopOrder {
    /// Weight-stationary order (spatial inner, channel outer).
    La,
    /// Activation-stationary order (channel inner, spatial outer).
    Lb,
}

impl LoopOrder {
    /// Both explored orders.
    #[must_use]
    pub fn all() -> [LoopOrder; 2] {
        [LoopOrder::La, LoopOrder::Lb]
    }

    /// The loop nest, innermost first.
    #[must_use]
    pub fn nest(&self) -> [Loop; 5] {
        match self {
            LoopOrder::La => [
                Loop::Window,
                Loop::ChannelTile,
                Loop::Spatial,
                Loop::ChannelOuter,
                Loop::KernelOuter,
            ],
            LoopOrder::Lb => [
                Loop::Window,
                Loop::ChannelTile,
                Loop::ChannelOuter,
                Loop::Spatial,
                Loop::KernelOuter,
            ],
        }
    }

    /// Whether weights stay stationary across the spatial scan (true for
    /// `La`).
    #[must_use]
    pub fn weights_stationary(&self) -> bool {
        matches!(self, LoopOrder::La)
    }
}

impl fmt::Display for LoopOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoopOrder::La => f.write_str("La"),
            LoopOrder::Lb => f.write_str("Lb"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_differ_only_in_loop3_loop4() {
        let a = LoopOrder::La.nest();
        let b = LoopOrder::Lb.nest();
        assert_eq!(a[0], b[0]);
        assert_eq!(a[1], b[1]);
        assert_eq!(a[4], b[4]);
        assert_eq!(a[2], b[3]);
        assert_eq!(a[3], b[2]);
        assert_ne!(a, b);
    }

    #[test]
    fn la_is_weight_stationary() {
        assert!(LoopOrder::La.weights_stationary());
        assert!(!LoopOrder::Lb.weights_stationary());
    }

    #[test]
    fn window_is_innermost_kernel_outermost() {
        for order in LoopOrder::all() {
            let nest = order.nest();
            assert_eq!(nest[0], Loop::Window);
            assert_eq!(nest[4], Loop::KernelOuter);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(LoopOrder::La.to_string(), "La");
        assert_eq!(LoopOrder::Lb.to_string(), "Lb");
        assert!(Loop::Spatial.to_string().contains("Loop3"));
    }
}
