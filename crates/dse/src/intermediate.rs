//! Intermediate-data-transfer elimination analysis (paper Fig. 3).
//!
//! Without the intermediate buffer, the DWC output is written to external
//! memory and read back as the PWC input. With it (the paper's "direct data
//! transfer"), both crossings disappear. Fig. 3 plots, per layer, the
//! baseline activation access count, the count without the intermediate
//! transfers, and the reduction percentage.
//!
//! Two counting policies are provided (the paper does not state its policy;
//! see EXPERIMENTS.md for the paper-vs-measured comparison):
//!
//! * [`AccessPolicy::Simple`] — every activation element crosses the
//!   external interface once per producer/consumer:
//!   baseline = `ifmap + 2·intermediate + ofmap`; optimized = `ifmap +
//!   ofmap`. Reductions: 25 % (stride-2 layers) to 50 % (square stride-1
//!   layers), ≈40 % total — bracketing the paper's 15.4–46.9 % / 34.7 %.
//! * [`AccessPolicy::TiledHalo`] — the DWC input is counted with the tile
//!   halo re-reads of the La dataflow (each 4×4 window fetched per 2×2
//!   output tile), which damps the relative reduction.

use edea_nn::workload::LayerShape;

use crate::{LoopOrder, TileConfig};

/// How activation accesses are counted at the external interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AccessPolicy {
    /// Each element crosses once per producer/consumer.
    #[default]
    Simple,
    /// DWC input counted with La-dataflow halo re-reads.
    TiledHalo,
}

/// Per-layer result of the elimination analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerReduction {
    /// Layer index.
    pub index: usize,
    /// Activation accesses with intermediate round-trip (Fig. 3 "Baseline").
    pub baseline: u64,
    /// Activation accesses with direct transfer ("w/o inter. data access").
    pub optimized: u64,
}

impl LayerReduction {
    /// Reduction percentage `100·(baseline − optimized)/baseline`.
    #[must_use]
    pub fn reduction_pct(&self) -> f64 {
        100.0 * (self.baseline - self.optimized) as f64 / self.baseline as f64
    }
}

/// Whole-network elimination analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct IntermediateAnalysis {
    /// Per-layer rows, in layer order.
    pub layers: Vec<LayerReduction>,
}

impl IntermediateAnalysis {
    /// Runs the analysis over a layer stack.
    #[must_use]
    pub fn run(layers: &[LayerShape], policy: AccessPolicy) -> Self {
        let cfg = TileConfig::edea();
        let rows = layers
            .iter()
            .map(|l| {
                let ifmap = match policy {
                    AccessPolicy::Simple => l.ifmap_elems(),
                    AccessPolicy::TiledHalo => {
                        crate::access::layer_access(l, &cfg, LoopOrder::La).dwc_act
                    }
                };
                let inter = l.intermediate_elems();
                let ofmap = l.ofmap_elems();
                LayerReduction {
                    index: l.index,
                    baseline: ifmap + 2 * inter + ofmap,
                    optimized: ifmap + ofmap,
                }
            })
            .collect();
        Self { layers: rows }
    }

    /// Total baseline accesses.
    #[must_use]
    pub fn total_baseline(&self) -> u64 {
        self.layers.iter().map(|l| l.baseline).sum()
    }

    /// Total optimized accesses.
    #[must_use]
    pub fn total_optimized(&self) -> u64 {
        self.layers.iter().map(|l| l.optimized).sum()
    }

    /// Network-total reduction percentage (paper: 34.7 %).
    #[must_use]
    pub fn total_reduction_pct(&self) -> f64 {
        100.0 * (self.total_baseline() - self.total_optimized()) as f64
            / self.total_baseline() as f64
    }

    /// Smallest and largest per-layer reduction (paper: 15.4 % / 46.9 %).
    #[must_use]
    pub fn reduction_range(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for l in &self.layers {
            lo = lo.min(l.reduction_pct());
            hi = hi.max(l.reduction_pct());
        }
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edea_nn::workload::mobilenet_v1_cifar10;

    #[test]
    fn layer0_baseline_matches_hand_count() {
        // Layer 0: ifmap 32·32·32, intermediate 32·32·32, ofmap 32·32·64.
        let a = IntermediateAnalysis::run(&mobilenet_v1_cifar10(), AccessPolicy::Simple);
        assert_eq!(a.layers[0].baseline, 32_768 + 2 * 32_768 + 65_536);
        assert_eq!(a.layers[0].optimized, 32_768 + 65_536);
        assert!((a.layers[0].reduction_pct() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn every_layer_benefits() {
        for policy in [AccessPolicy::Simple, AccessPolicy::TiledHalo] {
            let a = IntermediateAnalysis::run(&mobilenet_v1_cifar10(), policy);
            for l in &a.layers {
                assert!(
                    l.optimized < l.baseline,
                    "layer {} policy {policy:?}",
                    l.index
                );
            }
        }
    }

    #[test]
    fn simple_policy_brackets_paper_band() {
        // Paper Fig. 3: per-layer 15.4–46.9 %, total 34.7 %. The Simple
        // policy yields 25–50 % per layer and ≈40 % total — same shape
        // (every layer benefits, stride-2 layers least, ≈⅓ overall).
        let a = IntermediateAnalysis::run(&mobilenet_v1_cifar10(), AccessPolicy::Simple);
        let (lo, hi) = a.reduction_range();
        assert!((lo - 25.0).abs() < 1e-9, "lo={lo}");
        assert!((hi - 50.0).abs() < 1e-9, "hi={hi}");
        let total = a.total_reduction_pct();
        assert!((total - 40.0).abs() < 1.0, "total={total}");
    }

    #[test]
    fn stride2_layers_benefit_least() {
        let a = IntermediateAnalysis::run(&mobilenet_v1_cifar10(), AccessPolicy::Simple);
        let strided: Vec<f64> = [1usize, 3, 5, 11]
            .iter()
            .map(|&i| a.layers[i].reduction_pct())
            .collect();
        let dense: Vec<f64> = [2usize, 4, 6, 12]
            .iter()
            .map(|&i| a.layers[i].reduction_pct())
            .collect();
        for (s, d) in strided.iter().zip(&dense) {
            assert!(s < d, "strided {s} should be below dense {d}");
        }
    }

    #[test]
    fn tiled_halo_shows_smaller_relative_gain() {
        let layers = mobilenet_v1_cifar10();
        let simple = IntermediateAnalysis::run(&layers, AccessPolicy::Simple);
        let halo = IntermediateAnalysis::run(&layers, AccessPolicy::TiledHalo);
        assert!(halo.total_reduction_pct() < simple.total_reduction_pct());
        // Baselines are larger under the halo policy (ifmap re-reads).
        assert!(halo.total_baseline() > simple.total_baseline());
    }

    #[test]
    fn fig3_magnitudes() {
        // Fig. 3's bar axis tops out at 2e5; layer 0 is the largest bar.
        let a = IntermediateAnalysis::run(&mobilenet_v1_cifar10(), AccessPolicy::Simple);
        let max = a.layers.iter().map(|l| l.baseline).max().unwrap();
        assert_eq!(max, a.layers[0].baseline);
        assert!(max < 200_000);
    }
}
