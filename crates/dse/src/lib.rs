//! Design space exploration (DSE) for the EDEA dual-engine DSC accelerator.
//!
//! Reproduces Section II of the paper: given the 13 DSC layers of
//! MobileNetV1-CIFAR10, explore loop orders ([`LoopOrder::La`] /
//! [`LoopOrder::Lb`]), spatial tile sizes (`Tn = Tm ∈ {1, 2}`) and
//! channel/kernel tile sizes (Table I's six `(Td, Tk)` cases), scoring each
//! point by PE-array size (Fig. 2a) and external-memory access count
//! (Fig. 2b), and analyze the activation-access reduction from eliminating
//! the intermediate DWC→PWC transfer (Fig. 3).
//!
//! The headline result this crate reproduces: **loop order La with
//! Tn = Tm = 2 and Case 6 (Td = 8, Tk = 16) minimizes the access count**
//! (tie-broken towards the largest PE array, i.e. the highest parallelism),
//! which is exactly the configuration the hardware of Section III
//! implements.
//!
//! # Example
//!
//! ```
//! use edea_dse::sweep::{full_sweep, select_optimal};
//! use edea_nn::workload::mobilenet_v1_cifar10;
//!
//! let layers = mobilenet_v1_cifar10();
//! let rows = full_sweep(&layers);
//! let best = select_optimal(&rows).expect("non-empty sweep");
//! assert_eq!(best.case.name, "Case6");
//! assert_eq!(best.config.tn, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod access;
pub mod intermediate;
pub mod loops;
pub mod pe_array;
pub mod sweep;
pub mod tiling;

pub use access::AccessCounts;
pub use loops::LoopOrder;
pub use tiling::{TileConfig, TilingCase};
