//! The full design-space sweep (Fig. 2) and optimal-point selection.

use edea_nn::workload::LayerShape;

use crate::access::{network_access, AccessCounts};
use crate::pe_array;
use crate::tiling::{exploration_groups, table1_cases, ExplorationGroup, TilingCase};
use crate::TileConfig;

/// One evaluated design point: a group (loop order × spatial tile) and a
/// Table I case, with its PE size and network-total access counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepRow {
    /// The exploration group (order, Tn).
    pub group: ExplorationGroup,
    /// The `(Td, Tk)` case.
    pub case: TilingCase,
    /// The full tile configuration.
    pub config: TileConfig,
    /// Total PE MACs (Fig. 2a value).
    pub pe_macs: u64,
    /// Network-total access counts (Fig. 2b values).
    pub access: AccessCounts,
}

/// Evaluates all 4 groups × 6 cases over a layer stack (24 design points).
#[must_use]
pub fn full_sweep(layers: &[LayerShape]) -> Vec<SweepRow> {
    let mut rows = Vec::with_capacity(24);
    for group in exploration_groups() {
        for case in table1_cases() {
            let config = group.config(case);
            rows.push(SweepRow {
                group,
                case,
                config,
                pe_macs: pe_array::total_macs(&config),
                access: network_access(layers, &config, group.order),
            });
        }
    }
    rows
}

/// Selects the paper's optimum: minimal total access count, tie-broken
/// towards the **largest** PE array (highest parallelism — the paper prefers
/// Case 6 over the access-equivalent Case 3 for exactly this reason).
///
/// Returns `None` for an empty sweep.
#[must_use]
pub fn select_optimal(rows: &[SweepRow]) -> Option<&SweepRow> {
    rows.iter().min_by(|a, b| {
        a.access
            .total()
            .cmp(&b.access.total())
            .then(b.pe_macs.cmp(&a.pe_macs)) // larger PE wins ties
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LoopOrder;
    use edea_nn::workload::mobilenet_v1_cifar10;

    #[test]
    fn sweep_has_24_points() {
        let rows = full_sweep(&mobilenet_v1_cifar10());
        assert_eq!(rows.len(), 24);
    }

    #[test]
    fn optimum_is_la_tn2_case6() {
        // The headline DSE result of the paper.
        let rows = full_sweep(&mobilenet_v1_cifar10());
        let best = select_optimal(&rows).unwrap();
        assert_eq!(best.group.order, LoopOrder::La);
        assert_eq!(best.group.tn, 2);
        assert_eq!(best.case.name, "Case6");
        assert_eq!(best.pe_macs, 800);
    }

    #[test]
    fn la_higher_act_lb_higher_weight_in_every_group() {
        // The paper's Fig. 2b claim is per access category: "La consistently
        // demonstrates higher activation access count, while Lb consistently
        // exhibits higher weight access count". (Per-case *totals* can go
        // either way for small Tk, where La's intermediate re-reads blow up —
        // one more reason the optimum sits at Tk = 16.)
        let rows = full_sweep(&mobilenet_v1_cifar10());
        for case in crate::tiling::table1_cases() {
            for tn in [1usize, 2] {
                let get = |order: LoopOrder| {
                    rows.iter()
                        .find(|r| r.group.order == order && r.group.tn == tn && r.case == case)
                        .unwrap()
                        .access
                };
                let la = get(LoopOrder::La);
                let lb = get(LoopOrder::Lb);
                assert!(la.act_total() > lb.act_total(), "{} Tn={tn}", case.name);
                assert!(
                    lb.weight_total() > la.weight_total(),
                    "{} Tn={tn}",
                    case.name
                );
            }
        }
    }

    #[test]
    fn la_wins_totals_at_wide_kernel_tiles() {
        // For the Tk = 16 cases the weight-stationary order also wins on
        // totals — the regime the hardware operates in.
        let rows = full_sweep(&mobilenet_v1_cifar10());
        for name in ["Case3", "Case6"] {
            for tn in [1usize, 2] {
                let total = |order: LoopOrder| {
                    rows.iter()
                        .find(|r| r.group.order == order && r.group.tn == tn && r.case.name == name)
                        .unwrap()
                        .access
                        .total()
                };
                assert!(
                    total(LoopOrder::La) < total(LoopOrder::Lb),
                    "{name} Tn={tn}"
                );
            }
        }
    }

    #[test]
    fn larger_tk_reduces_la_access() {
        // Within La, Tk=16 strictly beats Tk=4 (fewer intermediate
        // re-reads), which is why Case 3/6 beat Case 1/4.
        let rows = full_sweep(&mobilenet_v1_cifar10());
        let case = |name: &str| {
            rows.iter()
                .find(|r| r.group.order == LoopOrder::La && r.group.tn == 2 && r.case.name == name)
                .unwrap()
        };
        assert!(case("Case6").access.total() < case("Case4").access.total());
        assert!(case("Case3").access.total() < case("Case1").access.total());
        // Case 3 and Case 6 tie on access (Td does not enter the model) —
        // the PE tie-break selects Case 6.
        assert_eq!(case("Case3").access.total(), case("Case6").access.total());
        assert!(case("Case6").pe_macs > case("Case3").pe_macs);
    }

    #[test]
    fn select_optimal_empty_is_none() {
        assert!(select_optimal(&[]).is_none());
    }

    #[test]
    fn sweep_is_deterministic() {
        let layers = mobilenet_v1_cifar10();
        assert_eq!(full_sweep(&layers), full_sweep(&layers));
    }
}
