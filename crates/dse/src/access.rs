//! External-memory access-count models (paper Table II / Fig. 2b).
//!
//! Accesses are counted at the external-memory interface, per inference, in
//! elements (int8 words). The two loop orders trade activation re-reads
//! against weight re-reads:
//!
//! | | activation access | weight access |
//! |---|---|---|
//! | **La** DWC | `Tr·Tc·Td · ⌈N/Tn⌉·⌈M/Tm⌉ · ⌈D/Td⌉` | `H·W·D` |
//! | **La** PWC | `N·M·D · ⌈K/Tk⌉` | `D·K` |
//! | **Lb** DWC | `R·C·D` | `H·W·D · ⌈N/Tn⌉·⌈M/Tm⌉` |
//! | **Lb** PWC | `N·M·D` | `D·K · ⌈N/Tn⌉·⌈M/Tm⌉` |
//!
//! The La rows with `Tn = Tm = 2` are exactly paper Table II. (`Lb` holds
//! activations stationary — each is fetched once, weights are re-fetched per
//! spatial tile.)

use edea_nn::workload::LayerShape;

use crate::{LoopOrder, TileConfig};

/// Access counts of one DSC layer under one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessCounts {
    /// DWC activation reads.
    pub dwc_act: u64,
    /// DWC weight reads.
    pub dwc_weight: u64,
    /// PWC activation reads.
    pub pwc_act: u64,
    /// PWC weight reads.
    pub pwc_weight: u64,
}

impl AccessCounts {
    /// Total activation accesses.
    #[must_use]
    pub fn act_total(&self) -> u64 {
        self.dwc_act + self.pwc_act
    }

    /// Total weight accesses.
    #[must_use]
    pub fn weight_total(&self) -> u64 {
        self.dwc_weight + self.pwc_weight
    }

    /// All accesses.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.act_total() + self.weight_total()
    }

    /// Element-wise sum, for aggregating over layers.
    #[must_use]
    pub fn add(&self, other: &AccessCounts) -> AccessCounts {
        AccessCounts {
            dwc_act: self.dwc_act + other.dwc_act,
            dwc_weight: self.dwc_weight + other.dwc_weight,
            pwc_act: self.pwc_act + other.pwc_act,
            pwc_weight: self.pwc_weight + other.pwc_weight,
        }
    }
}

fn ceil_div(a: usize, b: usize) -> u64 {
    a.div_ceil(b) as u64
}

/// Access counts of one layer under `(order, cfg)`.
///
/// # Panics
///
/// Panics if the configuration's kernel does not match the layer's.
#[must_use]
pub fn layer_access(layer: &LayerShape, cfg: &TileConfig, order: LoopOrder) -> AccessCounts {
    assert_eq!(cfg.kernel, layer.kernel, "kernel size mismatch");
    let n = layer.out_spatial();
    let spatial_tiles = ceil_div(n, cfg.tn) * ceil_div(n, cfg.tm);
    let channel_tiles = ceil_div(layer.d_in, cfg.td);
    let kernel_tiles = ceil_div(layer.k_out, cfg.tk);
    let (tr, tc) = cfg.input_tile(layer.stride);
    let d = layer.d_in as u64;
    let k = layer.k_out as u64;
    let hw = (layer.kernel * layer.kernel) as u64;
    let nm = (n * n) as u64;
    let rc = (layer.in_spatial * layer.in_spatial) as u64;
    match order {
        LoopOrder::La => AccessCounts {
            // Each spatial tile re-reads its (halo-overlapping) input window
            // for every channel tile; weights are fetched once.
            dwc_act: (tr * tc) as u64 * cfg.td as u64 * spatial_tiles * channel_tiles,
            dwc_weight: hw * d,
            // The whole intermediate map is re-read once per kernel tile.
            pwc_act: nm * d * kernel_tiles,
            pwc_weight: d * k,
        },
        LoopOrder::Lb => AccessCounts {
            // Activations fetched once; weights re-fetched per spatial tile.
            dwc_act: rc * d,
            dwc_weight: hw * d * spatial_tiles,
            pwc_act: nm * d,
            pwc_weight: d * k * spatial_tiles,
        },
    }
}

/// Sums [`layer_access`] over a layer stack.
#[must_use]
pub fn network_access(layers: &[LayerShape], cfg: &TileConfig, order: LoopOrder) -> AccessCounts {
    layers.iter().fold(AccessCounts::default(), |acc, l| {
        acc.add(&layer_access(l, cfg, order))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use edea_nn::workload::mobilenet_v1_cifar10;

    fn layer0() -> LayerShape {
        mobilenet_v1_cifar10()[0] // 32×32×32 → 32×32×64, stride 1
    }

    #[test]
    fn table2_equations_layer0() {
        // Hand-evaluated Table II for layer 0 with the EDEA config:
        // DWC act = Tr·Tc·D·(N·M)/(Tn·Tm) = 4·4·32·(1024/4)  = 131072
        // DWC wgt = H·W·D                  = 9·32             = 288
        // PWC act = N·M·D·K/Tk             = 1024·32·4        = 131072
        // PWC wgt = D·K                    = 32·64            = 2048
        let a = layer_access(&layer0(), &TileConfig::edea(), LoopOrder::La);
        assert_eq!(a.dwc_act, 131_072);
        assert_eq!(a.dwc_weight, 288);
        assert_eq!(a.pwc_act, 131_072);
        assert_eq!(a.pwc_weight, 2_048);
    }

    #[test]
    fn stride2_layer_uses_5x5_windows() {
        let l1 = mobilenet_v1_cifar10()[1]; // stride 2
        let a = layer_access(&l1, &TileConfig::edea(), LoopOrder::La);
        // Tr=Tc=5: 25·8·(8·8 tiles)·(64/8 channel tiles) = 25·8·64·8
        assert_eq!(a.dwc_act, 25 * 8 * 64 * 8);
    }

    #[test]
    fn la_has_higher_act_lb_has_higher_weight() {
        // The paper's qualitative claim, checked on every layer.
        let cfg = TileConfig::edea();
        for l in mobilenet_v1_cifar10() {
            let la = layer_access(&l, &cfg, LoopOrder::La);
            let lb = layer_access(&l, &cfg, LoopOrder::Lb);
            assert!(la.act_total() >= lb.act_total(), "layer {}", l.index);
            assert!(lb.weight_total() >= la.weight_total(), "layer {}", l.index);
        }
    }

    #[test]
    fn la_weight_access_equals_parameter_count() {
        // Weight-stationary: every weight crosses the interface exactly once.
        let cfg = TileConfig::edea();
        for l in mobilenet_v1_cifar10() {
            let a = layer_access(&l, &cfg, LoopOrder::La);
            assert_eq!(a.weight_total(), l.dwc_params() + l.pwc_params());
        }
    }

    #[test]
    fn network_totals_have_fig2b_magnitude() {
        // Fig. 2b's best configuration (La, Tn=Tm=2, Case 6) sums to a few
        // million accesses over the 13 layers; weights ≈ 3.2M (read once).
        let layers = mobilenet_v1_cifar10();
        let a = network_access(&layers, &TileConfig::edea(), LoopOrder::La);
        assert_eq!(a.weight_total(), 3_139_584 + 9 * 4_960); // PWC + DWC params
        assert!(a.act_total() > 1_000_000 && a.act_total() < 10_000_000);
        // Lb is dominated by weight re-reads (orders of magnitude more):
        let b = network_access(&layers, &TileConfig::edea(), LoopOrder::Lb);
        assert!(b.weight_total() > 3 * a.weight_total());
    }

    #[test]
    fn kernel_tile_size_scales_pwc_act_rereads() {
        let l = layer0();
        let case3 = TileConfig::new(2, 2, 4, 16, 3);
        let case1 = TileConfig::new(2, 2, 4, 4, 3);
        let a3 = layer_access(&l, &case3, LoopOrder::La);
        let a1 = layer_access(&l, &case1, LoopOrder::La);
        assert_eq!(a1.pwc_act, 4 * a3.pwc_act); // K/4 vs K/16 passes
        assert_eq!(a1.dwc_act, a3.dwc_act); // Td does not change act totals
    }

    #[test]
    fn ceilings_cover_ragged_dimensions() {
        // A layer whose dims are not multiples of the tiles still counts
        // whole tiles (hardware pads).
        let l = LayerShape::dsc(0, 5, 10, 20, 1, 3);
        let cfg = TileConfig::new(2, 2, 8, 16, 3);
        let a = layer_access(&l, &cfg, LoopOrder::La);
        // spatial tiles = ceil(5/2)^2 = 9, channel tiles = ceil(10/8) = 2
        assert_eq!(a.dwc_act, 16 * 8 * 9 * 2);
        // kernel tiles = ceil(20/16) = 2
        assert_eq!(a.pwc_act, 25 * 10 * 2);
    }

    #[test]
    fn add_is_componentwise() {
        let x = AccessCounts {
            dwc_act: 1,
            dwc_weight: 2,
            pwc_act: 3,
            pwc_weight: 4,
        };
        let y = x.add(&x);
        assert_eq!(y.total(), 20);
        assert_eq!(y.act_total(), 8);
        assert_eq!(y.weight_total(), 12);
    }
}
