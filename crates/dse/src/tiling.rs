//! Tiling configurations (paper Table I).

use std::fmt;

use crate::LoopOrder;

/// A complete tiling configuration: spatial output tile `Tn×Tm`, channel
/// tile `Td`, kernel tile `Tk`, plus the DWC kernel size needed to derive
/// the input tile (`Tr×Tc`).
///
/// # Example
///
/// ```
/// use edea_dse::TileConfig;
///
/// let cfg = TileConfig::edea(); // the hardware configuration of Sec. III
/// assert_eq!((cfg.tn, cfg.tm, cfg.td, cfg.tk), (2, 2, 8, 16));
/// assert_eq!(cfg.input_tile(1), (4, 4)); // 4×4 window at stride 1
/// assert_eq!(cfg.input_tile(2), (5, 5)); // 5×5 window at stride 2
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileConfig {
    /// Output tile height `Tn`.
    pub tn: usize,
    /// Output tile width `Tm`.
    pub tm: usize,
    /// Channel tile depth `Td`.
    pub td: usize,
    /// Kernel tile count `Tk`.
    pub tk: usize,
    /// DWC kernel size (`H = W`), 3 for MobileNetV1.
    pub kernel: usize,
}

impl TileConfig {
    /// Builds a configuration; all parameters must be non-zero.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    #[must_use]
    pub fn new(tn: usize, tm: usize, td: usize, tk: usize, kernel: usize) -> Self {
        assert!(
            tn > 0 && tm > 0 && td > 0 && tk > 0 && kernel > 0,
            "tile parameters must be non-zero"
        );
        Self {
            tn,
            tm,
            td,
            tk,
            kernel,
        }
    }

    /// The configuration chosen by the paper for the hardware:
    /// `Tn = Tm = 2`, `Td = 8`, `Tk = 16`, 3×3 kernels.
    #[must_use]
    pub fn edea() -> Self {
        Self::new(2, 2, 8, 16, 3)
    }

    /// The DWC input tile (`Tr`, `Tc`) for a given stride:
    /// `Tr = (Tn−1)·stride + H`.
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0`.
    #[must_use]
    pub fn input_tile(&self, stride: usize) -> (usize, usize) {
        assert!(stride > 0, "stride must be positive");
        (
            (self.tn - 1) * stride + self.kernel,
            (self.tm - 1) * stride + self.kernel,
        )
    }

    /// Output tile element count `Tn·Tm`.
    #[must_use]
    pub fn out_tile_elems(&self) -> usize {
        self.tn * self.tm
    }
}

impl fmt::Display for TileConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tn={} Tm={} Td={} Tk={} ({}x{} kernel)",
            self.tn, self.tm, self.td, self.tk, self.kernel, self.kernel
        )
    }
}

/// One of the six `(Td, Tk)` cases of paper Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TilingCase {
    /// Case name as in the paper ("Case1" … "Case6").
    pub name: &'static str,
    /// Channel tile `Td`.
    pub td: usize,
    /// Kernel tile `Tk`.
    pub tk: usize,
}

/// The six cases of Table I.
#[must_use]
pub fn table1_cases() -> [TilingCase; 6] {
    [
        TilingCase {
            name: "Case1",
            td: 4,
            tk: 4,
        },
        TilingCase {
            name: "Case2",
            td: 4,
            tk: 8,
        },
        TilingCase {
            name: "Case3",
            td: 4,
            tk: 16,
        },
        TilingCase {
            name: "Case4",
            td: 8,
            tk: 4,
        },
        TilingCase {
            name: "Case5",
            td: 8,
            tk: 8,
        },
        TilingCase {
            name: "Case6",
            td: 8,
            tk: 16,
        },
    ]
}

/// One exploration group: a loop order with a spatial tile size. The paper
/// explores `{La, Lb} × {Tn=Tm=1, Tn=Tm=2}` = 4 groups, "constrained … to
/// Tn=Tm=1 or 2" so the 2×2-ofmap late layers stay fully utilized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExplorationGroup {
    /// Loop order.
    pub order: LoopOrder,
    /// Spatial tile (`Tn = Tm`).
    pub tn: usize,
}

/// The four exploration groups of Fig. 2.
#[must_use]
pub fn exploration_groups() -> [ExplorationGroup; 4] {
    [
        ExplorationGroup {
            order: LoopOrder::La,
            tn: 1,
        },
        ExplorationGroup {
            order: LoopOrder::Lb,
            tn: 1,
        },
        ExplorationGroup {
            order: LoopOrder::La,
            tn: 2,
        },
        ExplorationGroup {
            order: LoopOrder::Lb,
            tn: 2,
        },
    ]
}

impl ExplorationGroup {
    /// Expands the group with a Table I case into a full [`TileConfig`].
    #[must_use]
    pub fn config(&self, case: TilingCase) -> TileConfig {
        TileConfig::new(self.tn, self.tn, case.td, case.tk, 3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let cases = table1_cases();
        assert_eq!(cases.len(), 6);
        assert_eq!((cases[0].td, cases[0].tk), (4, 4));
        assert_eq!((cases[1].td, cases[1].tk), (4, 8));
        assert_eq!((cases[2].td, cases[2].tk), (4, 16));
        assert_eq!((cases[3].td, cases[3].tk), (8, 4));
        assert_eq!((cases[4].td, cases[4].tk), (8, 8));
        assert_eq!((cases[5].td, cases[5].tk), (8, 16));
    }

    #[test]
    fn edea_config_is_case6_la_tn2() {
        let cfg = TileConfig::edea();
        let case6 = table1_cases()[5];
        assert_eq!(
            cfg,
            ExplorationGroup {
                order: LoopOrder::La,
                tn: 2
            }
            .config(case6)
        );
    }

    #[test]
    fn input_tile_matches_fig5() {
        // Fig. 5a: 4×4×8 ifmap at stride 1, 5×5×8 at stride 2.
        let cfg = TileConfig::edea();
        assert_eq!(cfg.input_tile(1), (4, 4));
        assert_eq!(cfg.input_tile(2), (5, 5));
    }

    #[test]
    fn four_groups() {
        let groups = exploration_groups();
        assert_eq!(groups.len(), 4);
        assert!(groups.iter().filter(|g| g.tn == 1).count() == 2);
        assert!(groups.iter().filter(|g| g.order == LoopOrder::La).count() == 2);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_tile_rejected() {
        let _ = TileConfig::new(0, 2, 8, 16, 3);
    }

    #[test]
    fn display_mentions_all_parameters() {
        let s = TileConfig::edea().to_string();
        for part in ["Tn=2", "Tm=2", "Td=8", "Tk=16"] {
            assert!(s.contains(part), "missing {part} in {s}");
        }
    }
}
