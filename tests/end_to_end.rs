//! End-to-end integration: deploy-time flow → accelerator simulation →
//! golden-model equivalence, across the crate boundaries.

use edea::nn::executor;
use edea::nn::quantize::QuantizedDscNetwork;
use edea::tensor::Tensor3;
use edea::{Edea, EdeaConfig};
use edea_testutil::TestDeployment;

fn deploy(width: f64, seed: u64) -> (QuantizedDscNetwork, Tensor3<i8>) {
    let TestDeployment { qnet, input, .. } = edea_testutil::deploy(width, seed);
    (qnet, input)
}

#[test]
fn accelerator_is_bit_exact_over_whole_network() {
    let (qnet, input) = deploy(0.25, 100);
    let edea = Edea::new(EdeaConfig::paper()).unwrap();
    let run = edea.run_network(&qnet, &input).expect("run");
    let golden = executor::run_network(&qnet, &input);
    assert_eq!(run.output, golden.output, "final feature maps differ");
    for (i, (a, b)) in run.stats.layers.iter().zip(&golden.activities).enumerate() {
        assert!(
            (a.mid_zero - b.dwc_out_zero).abs() < 1e-12,
            "layer {i} mid zeros"
        );
        assert!(
            (a.out_zero - b.pwc_out_zero).abs() < 1e-12,
            "layer {i} out zeros"
        );
    }
}

#[test]
fn accelerator_is_bit_exact_on_every_single_layer() {
    // Feed each layer an independently generated (executor-produced) input
    // so a cancellation in one layer cannot mask a bug in another.
    let (qnet, input) = deploy(0.25, 200);
    let edea = Edea::new(EdeaConfig::paper()).unwrap();
    let mut x = input;
    for (i, layer) in qnet.layers().iter().enumerate() {
        let golden = executor::run_layer(layer, &x);
        let run = edea.run_layer(layer, &x).expect("layer run");
        assert_eq!(run.pwc_input, golden.pwc_input, "layer {i} intermediate");
        assert_eq!(run.output, golden.output, "layer {i} output");
        x = golden.output;
    }
}

#[test]
fn different_seeds_and_widths_stay_bit_exact() {
    for (width, seed) in [(0.25, 7), (0.5, 8)] {
        let (qnet, input) = deploy(width, seed);
        let edea = Edea::new(EdeaConfig::paper()).unwrap();
        let run = edea.run_layer(&qnet.layers()[0], &input).expect("run");
        let golden = executor::run_layer(&qnet.layers()[0], &input);
        assert_eq!(run.output, golden.output, "width {width} seed {seed}");
    }
}

#[test]
fn cycle_counts_are_identical_across_models() {
    // Three independent models of time — the analytic Eq. 1/Eq. 2, the
    // clocked pipeline, and the functional scheduler — must agree cycle-
    // for-cycle on every layer.
    let (qnet, input) = deploy(0.25, 300);
    let cfg = EdeaConfig::paper();
    let edea = Edea::new(cfg.clone()).unwrap();
    let run = edea.run_network(&qnet, &input).expect("run");
    for s in &run.stats.layers {
        let analytic = edea::core::timing::layer_cycles(&s.shape, &cfg);
        let clocked = edea::core::pipeline::simulate_layer(&s.shape, &cfg, 0);
        assert_eq!(
            s.cycles,
            analytic.total(),
            "functional vs analytic, layer {}",
            s.shape.index
        );
        if analytic.kernel_tiles >= 3 {
            // Bubble-free regime (every real MobileNetV1 layer): all three
            // models agree exactly.
            assert_eq!(
                clocked.total_cycles,
                analytic.total(),
                "clocked vs analytic, layer {}",
                s.shape.index
            );
        } else {
            // Narrow-K layers (this width-0.25 test model only): the clocked
            // pipeline exposes intermediate-buffer stalls that Eq. 1 does
            // not model.
            assert!(
                clocked.total_cycles >= analytic.total(),
                "layer {}",
                s.shape.index
            );
        }
    }
}

#[test]
fn external_traffic_excludes_intermediate_map() {
    // The architectural point of the paper: the intermediate map never
    // crosses the external interface.
    let (qnet, input) = deploy(0.25, 400);
    let edea = Edea::new(EdeaConfig::paper()).unwrap();
    let run = edea.run_network(&qnet, &input).expect("run");
    for s in &run.stats.layers {
        // External writes are exactly the ofmap.
        assert_eq!(
            s.external.writes,
            s.shape.ofmap_elems(),
            "layer {}",
            s.shape.index
        );
        // And the intermediate traffic lives entirely on chip.
        assert_eq!(
            s.intermediate.writes,
            s.shape.intermediate_elems(),
            "layer {}",
            s.shape.index
        );
    }
}

#[test]
fn q8_16_nonconv_matches_float_reference_within_one_lsb() {
    // Cross-crate property: the fixed-point Non-Conv path (edea-fixed ->
    // edea-nn fold) agrees with an f64 reference on every intermediate
    // element of a real layer.
    let (qnet, input) = deploy(0.25, 500);
    let layer = &qnet.layers()[0];
    let acc = edea::tensor::conv::depthwise_conv2d_i8(
        &input,
        layer.dw_weights().values(),
        layer.shape().stride,
        layer.shape().pad(),
    );
    for ((c, h, w), &a) in acc.indexed_iter() {
        let hw = layer.nonconv1()[c].apply_fixed(a, 0);
        let exact = layer.nonconv1()[c].apply_exact(a, 0);
        assert!(
            (i32::from(hw) - i32::from(exact)).abs() <= 1,
            "({c},{h},{w}): {hw} vs {exact}"
        );
    }
}

#[test]
fn network_statistics_aggregate_consistently() {
    let (qnet, input) = deploy(0.25, 600);
    let edea = Edea::new(EdeaConfig::paper()).unwrap();
    let run = edea.run_network(&qnet, &input).expect("run");
    let sum: u64 = run.stats.layers.iter().map(|l| l.cycles).sum();
    assert_eq!(run.stats.total_cycles(), sum);
    let macs: u64 = run.stats.layers.iter().map(|l| l.total_macs()).sum();
    assert_eq!(run.stats.total_macs(), macs);
    assert!(run.stats.average_gops(edea.config()) > 0.0);
}
