//! Property-based robustness tests across architecture variants — the
//! paper's "PE arrays are friendly to scaling … without reducing
//! utilization" claim, exercised over random scaled configurations and
//! workloads.

use edea::core::{pipeline, timing};
use edea::dse::TileConfig;
use edea::nn::workload::LayerShape;
use edea::EdeaConfig;
use proptest::prelude::*;

fn scaled_config(td_mult: usize, tk_mult: usize) -> EdeaConfig {
    let mut cfg = EdeaConfig::paper();
    let td = 8 * td_mult;
    let tk = 16 * tk_mult;
    cfg.tile = TileConfig::new(2, 2, td, tk, 3);
    cfg.intermediate_buf_bytes = 2 * 4 * td;
    cfg
}

fn arbitrary_layer() -> impl Strategy<Value = LayerShape> {
    // Spatial sizes and channels that map onto the engines (multiples of
    // tiles, even outputs).
    (1usize..5, 1usize..8, 1usize..8, 1usize..3).prop_map(|(sp, d, k, stride)| {
        let out = 2 * sp; // even output
        let in_spatial = out * stride;
        // Channels: multiples of 16 so td up to 16 divides, and of 32 so
        // tk up to 32 divides.
        LayerShape::dsc(0, in_spatial, 8 * d * 2, 32 * k, stride, 3)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The clocked pipeline and Eq. 1/Eq. 2 agree whenever Kt ≥ 3
    /// (MobileNet's regime), across random layers and scaled engines.
    #[test]
    fn pipeline_equals_analytic_across_scaled_configs(
        l in arbitrary_layer(), td_mult in 1usize..3, tk_mult in 1usize..3,
    ) {
        let cfg = scaled_config(td_mult, tk_mult);
        prop_assume!(l.d_in % cfg.tile.td == 0);
        prop_assume!(l.k_out % cfg.tile.tk == 0);
        prop_assume!(l.k_out / cfg.tile.tk >= 3);
        let analytic = timing::layer_cycles(&l, &cfg);
        let clocked = pipeline::simulate_layer(&l, &cfg, 0);
        prop_assert_eq!(clocked.total_cycles, analytic.total());
        prop_assert_eq!(clocked.dwc_busy, analytic.dwc_busy);
        prop_assert_eq!(clocked.pwc_busy, analytic.pwc_busy);
    }

    /// Scaling Td halves the channel passes: cycles never increase, and
    /// throughput never decreases (the "friendly to scaling" claim).
    #[test]
    fn scaling_td_never_slows_a_layer(l in arbitrary_layer()) {
        let base = scaled_config(1, 1);
        let wide = scaled_config(2, 1);
        prop_assume!(l.d_in % wide.tile.td == 0 && l.k_out % wide.tile.tk == 0);
        let c1 = timing::layer_cycles(&l, &base).total();
        let c2 = timing::layer_cycles(&l, &wide).total();
        prop_assert!(c2 <= c1, "Td scaling slowed {c1} -> {c2}");
    }

    /// Scaling Tk divides the PWC busy cycles proportionally.
    #[test]
    fn scaling_tk_divides_pwc_work(l in arbitrary_layer()) {
        let base = scaled_config(1, 1);
        let wide = scaled_config(1, 2);
        prop_assume!(l.k_out % wide.tile.tk == 0);
        let b1 = timing::layer_cycles(&l, &base);
        let b2 = timing::layer_cycles(&l, &wide);
        prop_assert_eq!(b1.pwc_busy, 2 * b2.pwc_busy);
        prop_assert_eq!(b1.dwc_busy, b2.dwc_busy);
    }

    /// Latency in ns is inversely proportional to clock frequency.
    #[test]
    fn latency_scales_with_clock(l in arbitrary_layer(), mhz in 100u64..2000) {
        let mut cfg = EdeaConfig::paper();
        prop_assume!(l.d_in % 8 == 0 && l.k_out % 16 == 0);
        cfg.clock_mhz = mhz;
        let base = EdeaConfig::paper();
        let t1 = timing::layer_latency_ns(&l, &base);
        let t2 = timing::layer_latency_ns(&l, &cfg);
        let expect = t1 * 1000.0 / mhz as f64;
        prop_assert!((t2 - expect).abs() < 1e-6 * expect.max(1.0));
    }

    /// Throughput never exceeds the configured peak.
    #[test]
    fn throughput_bounded_by_peak(l in arbitrary_layer()) {
        let cfg = EdeaConfig::paper();
        prop_assume!(l.d_in % 8 == 0 && l.k_out % 16 == 0);
        let tp = timing::layer_throughput_gops(&l, &cfg);
        prop_assert!(tp <= cfg.peak_gops() + 1e-9, "{tp}");
        prop_assert!(tp > 0.0);
    }

    /// Technology scaling round-trips: scaling A→B→A is the identity.
    #[test]
    fn scaling_round_trip(ee in 0.1f64..100.0, tech in 10.0f64..90.0, v in 0.5f64..1.3) {
        use edea::core::scaling::{scale_energy_efficiency, OperatingPoint};
        let a = OperatingPoint { tech_nm: tech, voltage: v, precision_bits: 8 };
        let b = OperatingPoint::edea();
        let there = scale_energy_efficiency(ee, &a, &b);
        let back = scale_energy_efficiency(there, &b, &a);
        prop_assert!((back - ee).abs() < 1e-9 * ee);
    }

    /// Portion decomposition always covers the ofmap exactly, for any size.
    #[test]
    fn portions_cover_any_ofmap(out in 1usize..64, limit in 1usize..16) {
        let edges = timing::portion_edges(out, limit);
        prop_assert_eq!(edges.iter().sum::<usize>(), out);
        prop_assert!(edges.iter().all(|&e| e <= limit && e > 0));
    }
}
