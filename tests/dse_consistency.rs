//! Cross-validation of the DSE analytical access models (paper Table II)
//! against the functional simulator's actual buffer counters.

use edea::dse::access::layer_access;
use edea::dse::{LoopOrder, TileConfig};
use edea::mobilenet_v1_cifar10;
use edea::nn::mobilenet::MobileNetV1;
use edea::nn::quantize::{QuantStrategy, QuantizedDscNetwork};
use edea::nn::sparsity::SparsityProfile;
use edea::tensor::rng;
use edea::{Edea, EdeaConfig};

#[test]
fn table2_equations_match_simulator_counters() {
    // The DSE's Table II access model and the cycle-level simulator were
    // written independently; on a real execution they must agree:
    //  * DWC activation reads  = ifmap-buffer reads,
    //  * PWC activation reads  = intermediate-buffer reads,
    //  * DWC weight traffic    = external weight fetch (all layers),
    //  * PWC weight traffic    = external weight fetch (single-portion
    //    layers, where the portion re-fetch does not apply).
    let mut model = MobileNetV1::synthetic(0.25, 77);
    let calib = rng::synthetic_batch(1, 3, 32, 32, 78);
    let (qnet, _) = QuantizedDscNetwork::calibrate_shaped(
        &mut model,
        &calib,
        &SparsityProfile::paper(),
        QuantStrategy::paper(),
    )
    .unwrap();
    let edea = Edea::new(EdeaConfig::paper()).unwrap();
    let input = qnet.quantize_input(&model.forward_stem(&calib[0]));
    let run = edea.run_network(&qnet, &input).unwrap();
    let cfg = TileConfig::edea();

    for s in &run.stats.layers {
        let model = layer_access(&s.shape, &cfg, LoopOrder::La);
        let i = s.shape.index;
        // Intermediate (PWC input) re-reads: N·M·D·K/Tk.
        assert_eq!(model.pwc_act, s.intermediate.reads, "layer {i} pwc act");
        // External weight traffic is exactly the DWC kernels (fetched once,
        // H·W·D) plus the PWC slice re-fetched per portion × channel pass.
        let pwc_slice_ext =
            s.breakdown.portions * s.breakdown.channel_passes * (cfg.td * s.shape.k_out) as u64;
        assert_eq!(
            s.external.weight_reads,
            model.dwc_weight + pwc_slice_ext,
            "layer {i} weight stream"
        );
        if s.breakdown.portions == 1 {
            // Single-portion layers: PWC weights also fetched exactly once
            // per channel slice → D·K external bytes.
            let pwc_w_ext = s.breakdown.channel_passes * 8 * s.shape.k_out as u64;
            assert_eq!(model.pwc_weight, pwc_w_ext, "layer {i} pwc wgt");
        }
    }
}

#[test]
fn dwc_activation_model_matches_ifmap_buffer_reads() {
    // Table II DWC act = Tr·Tc·Td·spatial_tiles·channel_tiles — exactly the
    // per-tile window reads the simulator issues against the ifmap buffer.
    let mut model = MobileNetV1::synthetic(0.25, 79);
    let calib = rng::synthetic_batch(1, 3, 32, 32, 80);
    let (qnet, _) = QuantizedDscNetwork::calibrate_shaped(
        &mut model,
        &calib,
        &SparsityProfile::paper(),
        QuantStrategy::paper(),
    )
    .unwrap();
    let edea = Edea::new(EdeaConfig::paper()).unwrap();
    let input = qnet.quantize_input(&model.forward_stem(&calib[0]));
    let run = edea.run_network(&qnet, &input).unwrap();
    let cfg = TileConfig::edea();
    for s in &run.stats.layers {
        let m = layer_access(&s.shape, &cfg, LoopOrder::La);
        let ifmap_reads = s.onchip.reads
            - s.intermediate.reads
            - s.psum.reads
            - s.breakdown.pwc_busy * 128 // pwc weight-buffer reads
            - s.breakdown.portions * s.breakdown.channel_passes * (72 + 48); // dwc wgt + offline
        assert_eq!(m.dwc_act, ifmap_reads, "layer {}", s.shape.index);
    }
}

#[test]
fn fig3_elimination_equals_simulator_intermediate_traffic() {
    // The accesses Fig. 3 eliminates (one write + one read per intermediate
    // element) are exactly the traffic the simulator keeps on chip — its
    // intermediate-buffer writes (the reads are amplified K/Tk-fold, which
    // is the La re-read the buffer absorbs on top).
    let layers = mobilenet_v1_cifar10();
    let mut model = MobileNetV1::synthetic(1.0, 81);
    // Only check shapes/counters — use the analytic stats for width 1.0.
    for l in &layers {
        let s = edea::core::stats::synthetic_layer_stats(l, &EdeaConfig::paper(), 0.5, 0.5, 0.5);
        assert_eq!(s.intermediate.writes, l.intermediate_elems());
        assert_eq!(
            s.intermediate.reads,
            l.intermediate_elems() * (l.k_out as u64 / 16)
        );
    }
    // Keep the width-1.0 model alive so the test exercises its construction.
    assert_eq!(model.blocks_mut().len(), 13);
}
