//! Regression tests pinning the reproduction to the paper's published
//! numbers (the quantitative content of Figs. 10–13 and Table III).

use edea::core::power::{paper_layer_stats, EnergyModel};
use edea::core::{compare, paperdata, timing};
use edea::mobilenet_v1_cifar10;
use edea::EdeaConfig;

fn cfg() -> EdeaConfig {
    EdeaConfig::paper()
}

#[test]
fn fig10_latency_series() {
    // Latency in ns at 1 GHz, derived from Eq. 1/Eq. 2.
    let want: [f64; 13] = [
        4672.0, 4384.0, 8768.0, 4240.0, 8480.0, 4384.0, 8768.0, 8768.0, 8768.0, 8768.0, 8768.0,
        4672.0, 9344.0,
    ];
    for (l, w) in mobilenet_v1_cifar10().iter().zip(want) {
        assert_eq!(timing::layer_latency_ns(l, &cfg()), w, "layer {}", l.index);
    }
}

#[test]
fn fig13_throughput_series_exact() {
    for (l, w) in mobilenet_v1_cifar10()
        .iter()
        .zip(paperdata::THROUGHPUT_GOPS)
    {
        let got = timing::layer_throughput_gops(l, &cfg());
        assert!(
            (got - w).abs() < 0.06,
            "layer {}: {got} vs paper {w}",
            l.index
        );
    }
}

#[test]
fn headline_throughputs() {
    let t = timing::network_timing(&mobilenet_v1_cifar10(), &cfg());
    assert!((t.peak_gops - paperdata::headline::PEAK_GOPS).abs() < 0.1);
    // Paper average 981.42; our ops-weighted average 979.9 and arithmetic
    // mean 982.5 bracket it.
    assert!((t.average_gops - paperdata::headline::AVG_GOPS).abs() < 2.5);
}

#[test]
fn fig12_energy_efficiency_series() {
    let stats = paper_layer_stats(&cfg());
    let model = EnergyModel::calibrate(&stats, &cfg(), &paperdata::power_mw());
    for (s, want) in stats.iter().zip(paperdata::ENERGY_EFFICIENCY_TOPS_W) {
        let got = model.layer_efficiency_tops_w(s, &cfg());
        let err = (got - want).abs() / want;
        assert!(
            err < 0.12,
            "layer {}: {got:.2} vs paper {want} ({:.0}%)",
            s.shape.index,
            100.0 * err
        );
    }
}

#[test]
fn fig11_power_series() {
    let stats = paper_layer_stats(&cfg());
    let model = EnergyModel::calibrate(&stats, &cfg(), &paperdata::power_mw());
    let targets = paperdata::power_mw();
    // Endpoint anchors the paper quotes in prose:
    let p1 = model.layer_power_mw(&stats[1], &cfg());
    let p12 = model.layer_power_mw(&stats[12], &cfg());
    assert!((p1 - 117.7).abs() < 8.0, "layer 1 power {p1}");
    assert!((p12 - 67.7).abs() < 5.0, "layer 12 power {p12}");
    // Layer 1 is the maximum, layer 12 the minimum:
    let powers: Vec<f64> = stats
        .iter()
        .map(|s| model.layer_power_mw(s, &cfg()))
        .collect();
    let imax = powers
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap()
        .0;
    let imin = powers
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap()
        .0;
    assert_eq!(imax, 1);
    assert_eq!(imin, 12);
    // Mean absolute error across all 13 layers:
    let mae: f64 = powers
        .iter()
        .zip(&targets)
        .map(|(p, t)| (p - t).abs())
        .sum::<f64>()
        / 13.0;
    assert!(mae < 5.0, "mean absolute power error {mae} mW");
}

#[test]
fn peak_efficiency_headline() {
    let stats = paper_layer_stats(&cfg());
    let model = EnergyModel::calibrate(&stats, &cfg(), &paperdata::power_mw());
    let peak = stats
        .iter()
        .map(|s| model.layer_efficiency_tops_w(s, &cfg()))
        .fold(f64::MIN, f64::max);
    assert!(
        (peak - paperdata::headline::PEAK_TOPS_W).abs() < 0.9,
        "peak {peak} vs paper {}",
        paperdata::headline::PEAK_TOPS_W
    );
}

#[test]
fn fig9_area_breakdown_and_fig8_dimensions() {
    use edea::core::area::AreaBreakdown;
    let a = AreaBreakdown::paper();
    assert!((a.total_mm2() - 0.577).abs() < 0.002);
    assert!((a.pwc_to_dwc_ratio() - 1.69).abs() < 0.02);
    let fp = edea::core::floorplan::floorplan(&a);
    assert_eq!(fp.width_um, paperdata::DIE_WIDTH_UM);
    assert_eq!(fp.height_um, paperdata::DIE_HEIGHT_UM);
}

#[test]
fn table3_this_work_column() {
    let w = compare::this_work(72.5, 973.55, 0.58);
    assert!((w.energy_eff - 13.43).abs() < 0.01);
    assert!((w.area_eff - 1678.53).abs() < 0.5);
    // EDEA dominates every competitor after normalization, whichever
    // scaling rule is used:
    for e in compare::sota_entries() {
        assert!(
            w.energy_eff > e.paper_norm_ee && w.energy_eff > e.our_norm_ee(),
            "{}",
            e.name
        );
    }
}

#[test]
fn fig3_reduction_band() {
    use edea::dse::intermediate::{AccessPolicy, IntermediateAnalysis};
    let a = IntermediateAnalysis::run(&mobilenet_v1_cifar10(), AccessPolicy::Simple);
    let (lo, hi) = a.reduction_range();
    let total = a.total_reduction_pct();
    let (plo, phi, ptotal) = paperdata::FIG3_REDUCTION;
    // Shape agreement: our band brackets similar magnitudes and the total
    // sits within ~6 points of the paper's 34.7 % (counting-policy delta,
    // documented in EXPERIMENTS.md).
    assert!(lo >= plo && lo <= plo + 15.0, "lo {lo} vs paper {plo}");
    assert!(hi >= phi - 5.0 && hi <= phi + 5.0, "hi {hi} vs paper {phi}");
    assert!(
        (total - ptotal).abs() < 6.0,
        "total {total} vs paper {ptotal}"
    );
}

#[test]
fn dse_headline_choice() {
    use edea::dse::sweep::{full_sweep, select_optimal};
    let rows = full_sweep(&mobilenet_v1_cifar10());
    let best = select_optimal(&rows).unwrap();
    assert_eq!(best.case.name, "Case6");
    assert_eq!(best.group.tn, 2);
    assert_eq!(best.pe_macs, 800);
}
