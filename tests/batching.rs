//! Batched multi-image inference: edge cases of the weight-residency
//! schedule against the per-image path and the golden executor.
//!
//! The contract under test: batching changes *when* weight tiles cross the
//! external interface (once per batch instead of once per image), never
//! *what* is computed — so a batch of one is bit-identical to the
//! unbatched path, every batched output matches the golden executor, and
//! external weight reads do not scale with `N`.

use edea::nn::executor;
use edea_testutil::{batch_inputs, deploy, deploy_and_run_batch, paper_edea};

#[test]
fn batch_of_one_is_bit_identical_to_unbatched_path() {
    let (d, inputs, batch) = deploy_and_run_batch(0.25, 501, 1);
    let single = paper_edea()
        .run_network(&d.qnet, &inputs[0])
        .expect("network runs");
    assert_eq!(batch.outputs[0], single.output, "outputs diverged");
    assert_eq!(batch.stats.batch, 1);
    assert_eq!(batch.stats.total_cycles(), single.stats.total_cycles());
    // Every statistic — cycles, activities, all five traffic categories —
    // must collapse to the per-image stats exactly.
    for (b, s) in batch.stats.layers.iter().zip(&single.stats.layers) {
        assert_eq!(
            b.clone().into_layer_stats(),
            *s,
            "layer {} stats diverged",
            s.shape.index
        );
    }
}

#[test]
fn batched_outputs_match_golden_executor() {
    let (d, inputs, batch) = deploy_and_run_batch(0.25, 502, 3);
    let golden = executor::run_batch(&d.qnet, &inputs);
    assert_eq!(batch.outputs, golden.outputs(), "batch vs golden executor");
}

#[test]
fn batched_weight_reads_equal_unbatched_not_n_times() {
    let (d, inputs, batch) = deploy_and_run_batch(0.25, 503, 4);
    let single = paper_edea()
        .run_network(&d.qnet, &inputs[0])
        .expect("network runs");
    for (b, s) in batch.stats.layers.iter().zip(&single.stats.layers) {
        let i = s.shape.index;
        // Weight and offline-parameter fetches: once per batch.
        assert_eq!(
            b.external.weight_reads, s.external.weight_reads,
            "layer {i}"
        );
        assert_eq!(b.external.param_reads, s.external.param_reads, "layer {i}");
        // Per-image streams: exactly N×.
        assert_eq!(
            b.external.ifmap_reads,
            4 * s.external.ifmap_reads,
            "layer {i}"
        );
        assert_eq!(b.external.writes, 4 * s.external.writes, "layer {i}");
    }
    // Network-level: weight bytes per image strictly decrease vs N=1.
    let per_image_weights = single.stats.external_weight_total() as f64;
    assert!(batch.stats.weight_bytes_per_image() < per_image_weights);
    assert!((batch.stats.weight_bytes_per_image() - per_image_weights / 4.0).abs() < 1e-9);
}

#[test]
fn weight_traffic_per_image_strictly_decreases_in_n() {
    let d = deploy(0.25, 504);
    let edea = paper_edea();
    let mut last = f64::INFINITY;
    for n in [1usize, 2, 4] {
        let inputs = batch_inputs(&d, n, 505);
        let run = edea.run_batch(&d.qnet, &inputs).expect("batched run");
        let w = run.stats.weight_bytes_per_image();
        assert!(w < last, "N={n}: {w} not below {last}");
        // Cycles per image are batch-invariant (initiation-bound).
        assert_eq!(
            run.stats.cycles_per_image(),
            edea.run_network(&d.qnet, &inputs[0])
                .expect("single run")
                .stats
                .total_cycles()
        );
        last = w;
    }
}
