//! The serving layer end to end: a seeded request stream driven through
//! the batch-forming scheduler on both the cycle-accurate simulator
//! backend and the golden-reference backend.
//!
//! The contract under test: the scheduler changes *when* images are
//! dispatched (and therefore how weight fetches amortize), never *what* is
//! computed — every response is bit-identical to running the same input
//! through `run_network`, batch boundaries are identical across backends
//! (the simulator's measured service cost equals the analytic cost model
//! pacing the golden backend), and external weight traffic per image falls
//! below the single-image baseline as batches form.

use edea::nn::mobilenet::MobileNetV1;
use edea::serve::{arrivals, Policy, Request, Scheduler, SimulatorBackend};
use edea::tensor::rng;
use edea::{Deployment, EdeaConfig};
use edea_testutil::{deploy, paper_edea, serve_requests};

fn deployment(seed: u64) -> Deployment {
    Deployment::builder()
        .model(MobileNetV1::synthetic(0.25, seed))
        .calibration(rng::synthetic_batch(2, 3, 32, 32, seed + 1))
        .config(EdeaConfig::paper())
        .build()
        .expect("synthetic deployment builds")
}

#[test]
fn scheduler_serves_32_requests_bit_identically_on_both_backends() {
    let d = deployment(900);
    let sim = d.simulator_backend();
    let golden = d.golden_backend().expect("golden backend");

    // Offered load ~2× capacity: Poisson arrivals with a mean gap of half
    // the per-image service time, so the queue builds and batches form.
    let per_image = sim.cost().per_image_cycles();
    let ticks = arrivals::poisson(32, per_image as f64 / 2.0, 901);
    let images = rng::synthetic_batch(32, 3, 32, 32, 902);
    let inputs: Vec<_> = images.iter().map(|img| d.prepare(img)).collect();
    let scheduler = Scheduler::new(Policy::new(4, per_image).expect("policy"));

    let rs = scheduler
        .serve(
            sim,
            Request::stream(&ticks, inputs.clone()).expect("stream"),
        )
        .expect("simulator serve");
    let rg = scheduler
        .serve(
            &golden,
            Request::stream(&ticks, inputs.clone()).expect("stream"),
        )
        .expect("golden serve");

    assert_eq!(rs.responses.len(), 32);
    assert_eq!(rs.backend, "simulator");
    assert_eq!(rg.backend, "golden");

    // Identical batch boundaries AND identical service/traffic accounting:
    // the simulator's measured cycles and external bytes per batch equal
    // the analytic cost model that paces the golden backend.
    assert_eq!(rs.batches, rg.batches);

    // Every output bit-identical to the per-image path, on both backends.
    for (id, input) in inputs.iter().enumerate() {
        let single = d.run(input).expect("run_network");
        let from_sim = rs.response(id as u64).expect("sim response");
        let from_gold = rg.response(id as u64).expect("golden response");
        assert_eq!(
            from_sim.output, single.output,
            "request {id} vs run_network"
        );
        assert_eq!(
            from_gold.output, single.output,
            "request {id} golden vs run_network"
        );
    }

    // Under 2× load the scheduler must actually form multi-image batches…
    assert!(
        rs.batches.iter().any(|b| b.size > 1),
        "no batches formed under 2x load: {:?}",
        rs.batches.iter().map(|b| b.size).collect::<Vec<_>>()
    );
    assert!(rs.mean_batch_size() > 1.0);

    // …and the amortization survives the serving layer: each dispatch pays
    // the weight fetch once regardless of batch size, so weight DRAM bytes
    // per image fall below the single-image baseline.
    let baseline = sim.cost().weight_bytes();
    for b in &rs.batches {
        assert_eq!(b.weight_bytes, baseline, "batch {} weight bytes", b.index);
    }
    assert!(
        rs.weight_bytes_per_image() < baseline as f64,
        "{} !< {baseline}",
        rs.weight_bytes_per_image()
    );

    // Aggregate statistics are well-formed.
    assert!(rs.makespan() > 0);
    assert!(rs.mean_latency() > 0.0);
    assert!(rs.throughput_images_per_second(d.config()) > 0.0);
    assert_eq!(rs.slo_attainment(rs.max_latency()), 1.0);
}

#[test]
fn batch_of_one_policy_matches_run_network_and_baseline_traffic() {
    let d = deployment(910);
    let sim = d.simulator_backend();

    // Underloaded stream + max_batch = 1: every request rides alone.
    let gap = sim.cost().per_image_cycles() * 2;
    let ticks = arrivals::uniform(6, gap);
    let images = rng::synthetic_batch(6, 3, 32, 32, 911);
    let inputs: Vec<_> = images.iter().map(|img| d.prepare(img)).collect();
    let report = d
        .serve(
            Policy::new(1, 0).expect("policy"),
            Request::stream(&ticks, inputs.clone()).expect("stream"),
        )
        .expect("serve");

    assert!(report.batches.iter().all(|b| b.size == 1));
    assert_eq!(report.mean_batch_size(), 1.0);
    // Batch-of-1 serving pays exactly the single-image weight traffic.
    assert_eq!(
        report.weight_bytes_per_image(),
        sim.cost().weight_bytes() as f64
    );
    // Underloaded with max_wait = 0, every request dispatches on arrival
    // and its latency is exactly the service time.
    for r in &report.responses {
        assert_eq!(r.dispatched, r.arrival, "request {}", r.id);
        assert_eq!(r.latency(), sim.cost().per_image_cycles());
    }
    // Bit-identity against the per-image path.
    for (id, input) in inputs.iter().enumerate() {
        let single = d.run(input).expect("run_network");
        assert_eq!(
            report.response(id as u64).expect("response").output,
            single.output,
            "request {id}"
        );
    }
}

#[test]
fn serving_is_deterministic_end_to_end() {
    // Same seed + arrival pattern → identical batch boundaries, outputs
    // and statistics (extends the determinism guard to the serving layer).
    // Also exercises building the backend from the core types directly,
    // without the facade builder.
    let d = deploy(0.25, 920);
    let backend = SimulatorBackend::new(paper_edea(), d.qnet.clone()).expect("backend");
    let per_image = backend.cost().per_image_cycles();
    let ticks = arrivals::poisson(8, per_image as f64 / 2.0, 921);
    let scheduler = Scheduler::new(Policy::new(4, per_image).expect("policy"));

    let a = scheduler
        .serve(&backend, serve_requests(&d, &ticks, 922))
        .expect("first run");
    let b = scheduler
        .serve(&backend, serve_requests(&d, &ticks, 922))
        .expect("second run");

    assert_eq!(a.batches, b.batches, "batch boundaries diverged");
    assert_eq!(a.responses, b.responses, "responses diverged");
    assert_eq!(a.weight_bytes_per_image(), b.weight_bytes_per_image());
    assert_eq!(a.mean_latency(), b.mean_latency());
}
