//! The accelerator pool end to end: the serving scheduler sharded across
//! N simulated EDEA instances through the `Deployment` facade.
//!
//! The contract under test: a pool of one is **bit-identical** to the PR 3
//! single-backend `Scheduler` path (same batch boundaries, same
//! `ServeReport` numbers — the generalization cannot drift), replication
//! changes *where* batches run and *how often* weights are fetched but
//! never what is computed (every response stays bit-identical to
//! `run_network`), throughput scales with workers, and the aggregate
//! weight DRAM traffic per image rises with the replica count at fixed
//! load — the replication cost.

use edea::nn::executor;
use edea::nn::mobilenet::MobileNetV1;
use edea::nn::workload::NetworkId;
use edea::pool::{DispatchPolicy, Dispatcher, Pool};
use edea::serve::{arrivals, Policy, Request, Scheduler, SimulatorBackend};
use edea::tensor::rng;
use edea::{Deployment, EdeaConfig};
use edea_testutil::{deploy, deploy_v2, mixed_requests, paper_edea, serve_requests};

fn deployment(seed: u64, replicas: usize) -> Deployment {
    Deployment::builder()
        .model(MobileNetV1::synthetic(0.25, seed))
        .calibration(rng::synthetic_batch(2, 3, 32, 32, seed + 1))
        .config(EdeaConfig::paper())
        .replicas(replicas)
        .build()
        .expect("synthetic deployment builds")
}

#[test]
fn pool_of_one_is_bit_identical_to_the_scheduler_path() {
    // The regression pin for the serve-layer generalization: the
    // single-backend scheduler and a one-worker pool must produce the
    // same batch boundaries and the same ServeReport numbers, under
    // every dispatch policy, on the real simulator backend.
    let d = deploy(0.25, 930);
    let backend = SimulatorBackend::new(paper_edea(), d.qnet.clone()).expect("backend");
    let per_image = backend.cost().per_image_cycles();
    let ticks = arrivals::poisson(12, per_image as f64 / 2.0, 931);
    let policy = Policy::new(4, per_image).expect("policy");

    let single = Scheduler::new(policy)
        .serve(&backend, serve_requests(&d, &ticks, 932))
        .expect("scheduler serve");
    for dp in [
        DispatchPolicy::RoundRobin,
        DispatchPolicy::LeastLoaded,
        DispatchPolicy::JoinShortestQueue,
    ] {
        let pool = Pool::replicate(backend.clone(), 1).expect("pool");
        let pooled = Dispatcher::new(policy, dp)
            .serve(&pool, serve_requests(&d, &ticks, 932))
            .expect("pool serve");
        assert_eq!(pooled.serve.batches, single.batches, "{dp}");
        assert_eq!(pooled.serve.responses, single.responses, "{dp}");
        assert_eq!(pooled.serve.backend, single.backend, "{dp}");
        assert_eq!(
            pooled.serve.weight_bytes_per_image(),
            single.weight_bytes_per_image(),
            "{dp}"
        );
        assert_eq!(pooled.serve.mean_latency(), single.mean_latency(), "{dp}");
        assert_eq!(pooled.serve.p50(), single.p50(), "{dp}");
        assert_eq!(pooled.serve.p95(), single.p95(), "{dp}");
        assert_eq!(pooled.serve.p99(), single.p99(), "{dp}");
        // Every batch ran on the lone worker.
        assert_eq!(pooled.assignments, vec![0; single.batches.len()], "{dp}");
        assert_eq!(pooled.workers[0].requests, 12, "{dp}");
    }

    // The facade's default single-replica serve is that same path.
    let d1 = deployment(930, 1);
    assert_eq!(d1.replicas(), 1);
}

#[test]
fn replicated_deployment_stays_bit_exact_and_scales_throughput() {
    let d = deployment(940, 3);
    let sim = d.simulator_backend();
    let per_image = sim.cost().per_image_cycles();

    // A 2x-overload Poisson stream through three replicas.
    let ticks = arrivals::poisson(12, per_image as f64 / 2.0, 941);
    let images = rng::synthetic_batch(12, 3, 32, 32, 942);
    let inputs: Vec<_> = images.iter().map(|img| d.prepare(img)).collect();
    let policy = Policy::new(4, per_image).expect("policy");

    let report = d
        .serve_pool(
            policy,
            DispatchPolicy::LeastLoaded,
            Request::stream(&ticks, inputs.clone()).expect("stream"),
        )
        .expect("pool serve");

    // Replication never changes what is computed: every response is
    // bit-identical to the one-shot per-image path, whichever worker
    // served it.
    assert_eq!(report.serve.responses.len(), 12);
    for (id, input) in inputs.iter().enumerate() {
        let single = d.run(input).expect("run_network");
        assert_eq!(
            report.serve.response(id as u64).expect("response").output,
            single.output,
            "request {id} vs run_network"
        );
    }

    // The stream actually spread: more than one worker served requests.
    let active = report.workers.iter().filter(|w| w.requests > 0).count();
    assert!(active > 1, "all requests landed on one worker");

    // Scaling: the same stream on a single replica takes strictly longer.
    let single = Scheduler::new(policy)
        .serve(sim, Request::stream(&ticks, inputs).expect("stream"))
        .expect("single serve");
    assert!(
        report.serve.makespan() < single.makespan(),
        "pool makespan {} !< single {}",
        report.serve.makespan(),
        single.makespan()
    );
    assert!(
        report.serve.mean_latency() < single.mean_latency(),
        "pool mean latency {} !< single {}",
        report.serve.mean_latency(),
        single.mean_latency()
    );

    // …and the replication cost shows: the pool runs more, smaller
    // batches, so aggregate weight bytes per image are at least the
    // single-backend figure (each dispatch pays a full weight fetch).
    assert!(report.serve.batches.len() >= single.batches.len());
    assert!(report.serve.weight_bytes_per_image() >= single.weight_bytes_per_image());
    // Per-worker weight accounting sums to the aggregate.
    let per_worker: u64 = report.workers.iter().map(|w| w.weight_bytes).sum();
    let aggregate: u64 = report.serve.batches.iter().map(|b| b.weight_bytes).sum();
    assert_eq!(per_worker, aggregate);
}

#[test]
fn replication_cost_rises_with_worker_count_at_fixed_load() {
    // One overloaded stream, one deployment — only the replica count
    // varies. Weight DRAM per image must not fall as workers are added,
    // and must strictly rise from 1 to 4 replicas (shorter queues form
    // smaller batches; every replica fetches its own weights).
    let d = deploy(0.25, 950);
    let backend = SimulatorBackend::new(paper_edea(), d.qnet.clone()).expect("backend");
    let per_image = backend.cost().per_image_cycles();
    let ticks = arrivals::poisson(16, per_image as f64 / 3.0, 951);
    let policy = Policy::new(8, per_image).expect("policy");

    let wpi = |n: usize| {
        let pool = Pool::replicate(backend.clone(), n).expect("pool");
        Dispatcher::new(policy, DispatchPolicy::LeastLoaded)
            .serve(&pool, serve_requests(&d, &ticks, 952))
            .expect("serve")
            .weight_bytes_per_image()
    };
    let one = wpi(1);
    let two = wpi(2);
    let four = wpi(4);
    assert!(two >= one, "{two} < {one}");
    assert!(four >= two, "{four} < {two}");
    assert!(four > one, "replication cost did not rise: {four} vs {one}");
    // Bounded by the unbatched single-image figure.
    assert!(four <= backend.cost().weight_bytes() as f64);
}

#[test]
fn pool_serving_is_deterministic_end_to_end() {
    // Same seed + arrival pattern + replica count → identical batch
    // boundaries, worker assignments, outputs and statistics (extends
    // the determinism guard to the pool layer).
    let d = deployment(960, 2);
    let per_image = d.simulator_backend().cost().per_image_cycles();
    let ticks = arrivals::poisson(8, per_image as f64 / 2.0, 961);
    let policy = Policy::new(4, per_image).expect("policy");

    let run = |seed| {
        let images = rng::synthetic_batch(8, 3, 32, 32, seed);
        let inputs: Vec<_> = images.iter().map(|img| d.prepare(img)).collect();
        d.serve_pool(
            policy,
            DispatchPolicy::JoinShortestQueue,
            Request::stream(&ticks, inputs).expect("stream"),
        )
        .expect("serve")
    };
    let a = run(962);
    let b = run(962);
    assert_eq!(
        a.serve.batches, b.serve.batches,
        "batch boundaries diverged"
    );
    assert_eq!(a.serve.responses, b.serve.responses, "responses diverged");
    assert_eq!(a.assignments, b.assignments, "assignments diverged");
    assert_eq!(a.workers, b.workers, "worker reports diverged");
}

#[test]
fn mixed_model_pool_serves_both_networks_bit_exactly() {
    // The testutil mixed-model builders in anger: a shared-stem pair
    // (v1 at width 0.5, v2 at width 0.25 — both (16, 32, 32) after the
    // stem) served as one alternating stream over a two-worker pool.
    // Every response must match the golden executor through the network
    // its request targeted, and the model switches must be accounted as
    // their own traffic category.
    let v1 = deploy(0.5, 970);
    let v2 = deploy_v2(0.25, 971);
    let backend = SimulatorBackend::new(paper_edea(), v1.qnet.clone())
        .expect("backend")
        .with_model(NetworkId(1), v2.qnet.clone())
        .expect("shared stem");
    let per_image = backend.cost().per_image_cycles();
    let ticks = arrivals::poisson(10, per_image as f64 / 2.0, 972);
    let nets = [NetworkId::PRIMARY, NetworkId(1)];
    let requests = mixed_requests(&v1, &v2, &nets, &ticks, 973);
    let policy = Policy::new(2, per_image).expect("policy");
    let pool = Pool::replicate(backend, 2).expect("pool");
    let report = Dispatcher::new(policy, DispatchPolicy::LeastLoaded)
        .serve(&pool, requests)
        .expect("mixed pool serve");

    assert_eq!(report.serve.responses.len(), 10);
    let images = rng::synthetic_batch(10, 3, 32, 32, 973);
    for (i, img) in images.iter().enumerate() {
        let resp = report.serve.response(i as u64).expect("response");
        let expected = if i % 2 == 0 {
            assert_eq!(resp.network, NetworkId::PRIMARY, "request {i}");
            let input = v1.qnet.quantize_input(&v1.model.forward_stem(img));
            executor::run_network(&v1.qnet, &input).output
        } else {
            assert_eq!(resp.network, NetworkId(1), "request {i}");
            let input = v2.qnet.quantize_input(&v2.model.forward_stem(img));
            executor::run_network(&v2.qnet, &input).output
        };
        assert_eq!(resp.output, expected, "request {i} vs golden executor");
    }

    // Both networks saw traffic, switches happened, and the per-worker
    // switch accounting sums to the aggregate — separate from the
    // per-batch external/weight traffic.
    assert!(report.serve.mean_latency_for(NetworkId::PRIMARY).is_some());
    assert!(report.serve.mean_latency_for(NetworkId(1)).is_some());
    assert!(report.serve.switch_bytes_total() > 0, "no model switches");
    let per_worker: u64 = report.workers.iter().map(|w| w.switch_bytes).sum();
    assert_eq!(per_worker, report.serve.switch_bytes_total());
}
