//! Determinism guard: the whole deploy flow — synthetic model, calibration,
//! quantization, accelerator simulation — must be a pure function of
//! `(width, seed)`. Every golden snapshot and paper-number regression in
//! this repo depends on that, and future batching/async/caching refactors
//! must not break it.
//!
//! The guard is parameterized over the host-thread count: every check runs
//! at 1 thread (the serial reference) and at 4 threads (the scoped thread
//! pool), and the threaded flow must also be bit-identical *to* the serial
//! one — parallelism is an implementation detail of the host, never of the
//! simulated machine.

use edea_testutil::{deploy_and_run_batch_threads, deploy_and_run_threads};

/// The thread counts the guard pins: the serial reference path and an
/// oversubscribed parallel one (the test hosts have fewer cores).
const THREADS: [usize; 2] = [1, 4];

#[test]
fn deploy_flow_is_bit_identical_across_runs() {
    let (d1, r1) = deploy_and_run_threads(0.25, 2024, 1);
    for threads in THREADS {
        let (da, ra) = deploy_and_run_threads(0.25, 2024, threads);
        let (db, rb) = deploy_and_run_threads(0.25, 2024, threads);

        // Deployment artifacts: identical quantized networks and inputs.
        assert_eq!(da.input, db.input, "quantized stem inputs diverged");
        assert_eq!(da.qnet.layers().len(), db.qnet.layers().len());
        for (la, lb) in da.qnet.layers().iter().zip(db.qnet.layers()) {
            assert_eq!(la.dw_weights().values(), lb.dw_weights().values());
            assert_eq!(la.pw_weights().values(), lb.pw_weights().values());
            assert_eq!(la.nonconv1(), lb.nonconv1());
            assert_eq!(la.nonconv2(), lb.nonconv2());
        }

        // Accelerator results: identical outputs and cycle statistics —
        // run to run at this thread count, and against the serial flow.
        assert_eq!(ra.output, rb.output, "network outputs diverged");
        assert_eq!(ra.stats.total_cycles(), rb.stats.total_cycles());
        assert_eq!(ra.stats.total_macs(), rb.stats.total_macs());
        assert_eq!(ra.stats.layers.len(), rb.stats.layers.len());
        for (sa, sb) in ra.stats.layers.iter().zip(&rb.stats.layers) {
            assert_eq!(sa, sb, "layer {} stats diverged", sa.shape.index);
        }
        assert_eq!(da.input, d1.input, "{threads}-thread deploy diverged");
        assert_eq!(
            ra.output, r1.output,
            "{threads}-thread output diverged from serial"
        );
        assert_eq!(
            ra.stats, r1.stats,
            "{threads}-thread stats diverged from serial"
        );
    }
}

#[test]
fn batched_deploy_flow_is_bit_identical_across_runs() {
    // The batched schedule must be as deterministic as the per-image one:
    // identical inputs, outputs and whole-batch statistics (including the
    // amortized external traffic split) on every run, at every thread
    // count, and across thread counts.
    let (_, i1, r1) = deploy_and_run_batch_threads(0.25, 2025, 3, 1);
    for threads in THREADS {
        let (_, ia, ra) = deploy_and_run_batch_threads(0.25, 2025, 3, threads);
        let (_, ib, rb) = deploy_and_run_batch_threads(0.25, 2025, 3, threads);
        assert_eq!(ia, ib, "batched inputs diverged");
        assert_eq!(ra.outputs, rb.outputs, "batched outputs diverged");
        assert_eq!(ra.stats.batch, rb.stats.batch);
        assert_eq!(ra.stats.layers.len(), rb.stats.layers.len());
        for (sa, sb) in ra.stats.layers.iter().zip(&rb.stats.layers) {
            assert_eq!(sa, sb, "layer {} batch stats diverged", sa.shape.index);
        }
        assert_eq!(ia, i1, "{threads}-thread batch inputs diverged");
        assert_eq!(
            ra.outputs, r1.outputs,
            "{threads}-thread batch outputs diverged from serial"
        );
        assert_eq!(
            ra.stats, r1.stats,
            "{threads}-thread batch stats diverged from serial"
        );
    }
}

#[test]
fn distinct_seeds_produce_distinct_flows() {
    // Guards against a refactor accidentally ignoring the seed (which would
    // make the determinism test above pass vacuously).
    for threads in THREADS {
        let (da, ra) = deploy_and_run_threads(0.25, 1, threads);
        let (db, rb) = deploy_and_run_threads(0.25, 2, threads);
        assert_ne!(da.input, db.input);
        assert_ne!(ra.output, rb.output);
    }
}
