//! Determinism guard: the whole deploy flow — synthetic model, calibration,
//! quantization, accelerator simulation — must be a pure function of
//! `(width, seed)`. Every golden snapshot and paper-number regression in
//! this repo depends on that, and future batching/async/caching refactors
//! must not break it.

use edea_testutil::{deploy_and_run, deploy_and_run_batch};

#[test]
fn deploy_flow_is_bit_identical_across_runs() {
    let (da, ra) = deploy_and_run(0.25, 2024);
    let (db, rb) = deploy_and_run(0.25, 2024);

    // Deployment artifacts: identical quantized networks and inputs.
    assert_eq!(da.input, db.input, "quantized stem inputs diverged");
    assert_eq!(da.qnet.layers().len(), db.qnet.layers().len());
    for (la, lb) in da.qnet.layers().iter().zip(db.qnet.layers()) {
        assert_eq!(la.dw_weights().values(), lb.dw_weights().values());
        assert_eq!(la.pw_weights().values(), lb.pw_weights().values());
        assert_eq!(la.nonconv1(), lb.nonconv1());
        assert_eq!(la.nonconv2(), lb.nonconv2());
    }

    // Accelerator results: identical outputs and cycle statistics.
    assert_eq!(ra.output, rb.output, "network outputs diverged");
    assert_eq!(ra.stats.total_cycles(), rb.stats.total_cycles());
    assert_eq!(ra.stats.total_macs(), rb.stats.total_macs());
    assert_eq!(ra.stats.layers.len(), rb.stats.layers.len());
    for (sa, sb) in ra.stats.layers.iter().zip(&rb.stats.layers) {
        assert_eq!(sa, sb, "layer {} stats diverged", sa.shape.index);
    }
}

#[test]
fn batched_deploy_flow_is_bit_identical_across_runs() {
    // The batched schedule must be as deterministic as the per-image one:
    // identical inputs, outputs and whole-batch statistics (including the
    // amortized external traffic split) on every run.
    let (_, ia, ra) = deploy_and_run_batch(0.25, 2025, 3);
    let (_, ib, rb) = deploy_and_run_batch(0.25, 2025, 3);
    assert_eq!(ia, ib, "batched inputs diverged");
    assert_eq!(ra.outputs, rb.outputs, "batched outputs diverged");
    assert_eq!(ra.stats.batch, rb.stats.batch);
    assert_eq!(ra.stats.layers.len(), rb.stats.layers.len());
    for (sa, sb) in ra.stats.layers.iter().zip(&rb.stats.layers) {
        assert_eq!(sa, sb, "layer {} batch stats diverged", sa.shape.index);
    }
}

#[test]
fn distinct_seeds_produce_distinct_flows() {
    // Guards against a refactor accidentally ignoring the seed (which would
    // make the determinism test above pass vacuously).
    let (da, ra) = deploy_and_run(0.25, 1);
    let (db, rb) = deploy_and_run(0.25, 2);
    assert_ne!(da.input, db.input);
    assert_ne!(ra.output, rb.output);
}
