//! Quickstart: build a serving [`Deployment`] (model + calibration in,
//! session out) and run a MobileNetV1 block on the EDEA accelerator.
//!
//! ```sh
//! cargo run -p edea --example quickstart --release
//! ```

use edea::nn::mobilenet::MobileNetV1;
use edea::tensor::rng;
use edea::{Deployment, EdeaConfig};

fn main() -> Result<(), edea::Error> {
    // 1. A synthetic MobileNetV1 (width 0.5 keeps the example snappy) and a
    //    small calibration batch of CIFAR-like images.
    let model = MobileNetV1::synthetic(0.5, 42);
    let calib = rng::synthetic_batch(2, 3, 32, 32, 7);

    // 2. Deploy-time preparation, all behind one builder: shape the
    //    trained-network sparsity profile, learn int8 step sizes (LSQ),
    //    fold BN+ReLU+quantization into the Q8.16 Non-Conv constants, and
    //    validate the accelerator configuration.
    let deployment = Deployment::builder()
        .model(model)
        .calibration(calib.clone())
        .config(EdeaConfig::paper())
        .build()?;
    let report = deployment.shaping_report();
    println!("calibrated {} DSC layers", deployment.qnet().layers().len());
    println!(
        "layer 12 activation sparsity: DWC {:.1}%  PWC {:.1}% (paper: 97.4% / 95.3%)",
        100.0 * report.dwc_zero[12],
        100.0 * report.pwc_zero[12]
    );

    // 3. Run layer 0 on the accelerator.
    let input = deployment.prepare(&calib[0]);
    let run = deployment
        .accelerator()
        .run_layer(&deployment.qnet().layers()[0], &input)?;

    let s = &run.stats;
    let cfg = deployment.config();
    println!("\n== layer 0 on EDEA ==");
    println!("cycles            : {}", s.cycles);
    println!(
        "latency           : {:.2} µs @ 1 GHz",
        s.latency_ns(cfg) / 1000.0
    );
    println!("throughput        : {:.1} GOPS", s.throughput_gops(cfg));
    println!(
        "DWC engine busy   : {:.1}%",
        100.0 * s.breakdown.dwc_utilization()
    );
    println!(
        "PWC engine busy   : {:.1}%",
        100.0 * s.breakdown.pwc_utilization()
    );
    println!("external traffic  : {} B", s.external.total());
    println!(
        "intermediate kept on chip: {} B written, {} B re-read (direct data transfer)",
        s.intermediate.writes, s.intermediate.reads
    );

    // 4. The simulator is bit-exact against the golden int8 executor:
    let golden = edea::nn::executor::run_layer(&deployment.qnet().layers()[0], &input);
    assert_eq!(run.output, golden.output);
    println!("\noutput verified bit-exact against the golden executor ✓");
    Ok(())
}
