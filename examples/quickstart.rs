//! Quickstart: quantize a MobileNetV1 block and run it on the EDEA
//! accelerator simulator.
//!
//! ```sh
//! cargo run -p edea --example quickstart --release
//! ```

use edea::nn::mobilenet::MobileNetV1;
use edea::nn::quantize::{QuantStrategy, QuantizedDscNetwork};
use edea::nn::sparsity::SparsityProfile;
use edea::tensor::rng;
use edea::{Edea, EdeaConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A synthetic MobileNetV1 (width 0.5 keeps the example snappy) and a
    //    small calibration batch of CIFAR-like images.
    let mut model = MobileNetV1::synthetic(0.5, 42);
    let calib = rng::synthetic_batch(2, 3, 32, 32, 7);

    // 2. Deploy-time preparation: shape the trained-network sparsity
    //    profile, learn int8 step sizes (LSQ), fold BN+ReLU+quantization
    //    into the Q8.16 Non-Conv constants.
    let (qnet, report) = QuantizedDscNetwork::calibrate_shaped(
        &mut model,
        &calib,
        &SparsityProfile::paper(),
        QuantStrategy::paper(),
    )?;
    println!("calibrated {} DSC layers", qnet.layers().len());
    println!(
        "layer 12 activation sparsity: DWC {:.1}%  PWC {:.1}% (paper: 97.4% / 95.3%)",
        100.0 * report.dwc_zero[12],
        100.0 * report.pwc_zero[12]
    );

    // 3. Run layer 0 on the accelerator.
    let edea = Edea::new(EdeaConfig::paper());
    let input = qnet.quantize_input(&model.forward_stem(&calib[0]));
    let run = edea.run_layer(&qnet.layers()[0], &input)?;

    let s = &run.stats;
    println!("\n== layer 0 on EDEA ==");
    println!("cycles            : {}", s.cycles);
    println!(
        "latency           : {:.2} µs @ 1 GHz",
        s.latency_ns(edea.config()) / 1000.0
    );
    println!(
        "throughput        : {:.1} GOPS",
        s.throughput_gops(edea.config())
    );
    println!(
        "DWC engine busy   : {:.1}%",
        100.0 * s.breakdown.dwc_utilization()
    );
    println!(
        "PWC engine busy   : {:.1}%",
        100.0 * s.breakdown.pwc_utilization()
    );
    println!("external traffic  : {} B", s.external.total());
    println!(
        "intermediate kept on chip: {} B written, {} B re-read (direct data transfer)",
        s.intermediate.writes, s.intermediate.reads
    );

    // 4. The simulator is bit-exact against the golden int8 executor:
    let golden = edea::nn::executor::run_layer(&qnet.layers()[0], &input);
    assert_eq!(run.output, golden.output);
    println!("\noutput verified bit-exact against the golden executor ✓");
    Ok(())
}
