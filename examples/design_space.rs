//! Design-space exploration walkthrough (paper Sec. II): sweep loop orders,
//! spatial tiles and Table I cases over MobileNetV1, pick the optimum, and
//! quantify the intermediate-transfer elimination.
//!
//! ```sh
//! cargo run -p edea --example design_space --release
//! ```

use edea::dse::intermediate::{AccessPolicy, IntermediateAnalysis};
use edea::dse::sweep::{full_sweep, select_optimal};
use edea::mobilenet_v1_cifar10;

fn main() {
    let layers = mobilenet_v1_cifar10();

    println!("== Fig. 2: 4 groups × 6 cases over 13 DSC layers ==");
    println!("group      | case  |  PE MACs | act access | wgt access |   total");
    println!("-----------+-------+----------+------------+------------+---------");
    let rows = full_sweep(&layers);
    for r in &rows {
        println!(
            "{} Tn=Tm={} | {} | {:8} | {:10} | {:10} | {:8}",
            r.group.order,
            r.group.tn,
            r.case.name,
            r.pe_macs,
            r.access.act_total(),
            r.access.weight_total(),
            r.access.total()
        );
    }

    let best = select_optimal(&rows).expect("non-empty sweep");
    println!(
        "\noptimum: {} with Tn=Tm={}, {} (Td={}, Tk={}) — {} MACs, {} total accesses",
        best.group.order,
        best.group.tn,
        best.case.name,
        best.case.td,
        best.case.tk,
        best.pe_macs,
        best.access.total()
    );
    println!("(paper: La, Tn=Tm=2, Case6 → the 288+512-MAC dual engine)");

    println!("\n== Fig. 3: eliminating the intermediate DWC→PWC transfer ==");
    let analysis = IntermediateAnalysis::run(&layers, AccessPolicy::Simple);
    println!("layer | baseline | direct | reduction");
    println!("------+----------+--------+----------");
    for l in &analysis.layers {
        println!(
            "{:5} | {:8} | {:6} | {:7.1}%",
            l.index,
            l.baseline,
            l.optimized,
            l.reduction_pct()
        );
    }
    let (lo, hi) = analysis.reduction_range();
    println!(
        "\nper-layer reduction {lo:.1}%–{hi:.1}%, total {:.1}% (paper: 15.4%–46.9%, total 34.7%)",
        analysis.total_reduction_pct()
    );
}
