//! Multi-accelerator serving: build a [`Deployment`] with N simulated
//! EDEA replicas and drive one overloaded Poisson stream through pools of
//! growing size — throughput scales with N until the pool capacity
//! crosses the offered load, while the aggregate weight DRAM traffic per
//! image *rises* (each replica fetches its own resident weights, and
//! shorter queues form smaller batches): the replication cost of
//! horizontal scaling.
//!
//! ```sh
//! cargo run -p edea --example pool --release
//! ```

use edea::nn::mobilenet::MobileNetV1;
use edea::pool::DispatchPolicy;
use edea::serve::{arrivals, Policy, Request};
use edea::tensor::rng;
use edea::{Deployment, EdeaConfig};

fn main() -> Result<(), edea::Error> {
    let n = 24;
    let load = 4.0; // 4x one instance's capacity

    println!("serving {n} requests at {load}x single-instance capacity\n");
    println!("replicas | mean batch | wgt B/img | p50 lat | p99 lat |  img/s | util");
    println!("---------+------------+-----------+---------+---------+--------+------");
    for replicas in [1usize, 2, 4] {
        // One session object owns the calibrated network and all replicas.
        let deployment = Deployment::builder()
            .model(MobileNetV1::synthetic(0.25, 42))
            .calibration(rng::synthetic_batch(2, 3, 32, 32, 7))
            .config(EdeaConfig::paper())
            .replicas(replicas)
            .build()?;

        let service = deployment.simulator_backend().cost().per_image_cycles();
        let ticks = arrivals::poisson(n, service as f64 / load, 1000);
        let inputs = (0..n)
            .map(|i| deployment.prepare(&rng::synthetic_image(3, 32, 32, 2000 + i as u64)))
            .collect();
        let report = deployment.serve_pool(
            Policy::new(8, service)?,
            DispatchPolicy::LeastLoaded,
            Request::stream(&ticks, inputs)?,
        )?;
        println!(
            "{replicas:>8} | {:>10.2} | {:>9.0} | {:>7} | {:>7} | {:>6.0} | {:.2}",
            report.serve.mean_batch_size(),
            report.serve.weight_bytes_per_image(),
            report.serve.p50(),
            report.serve.p99(),
            report
                .serve
                .throughput_images_per_second(deployment.config()),
            report.mean_utilization(),
        );
    }
    println!(
        "\nmore replicas -> shorter queues -> smaller batches -> more weight bytes\n\
         per image (each replica pays its own per-dispatch weight fetch), while\n\
         throughput climbs until the pool outruns the arrival rate. Outputs stay\n\
         bit-identical to the per-image path on every worker (tests/pool.rs),\n\
         and a pool of one is bit-identical to the single-backend scheduler."
    );
    Ok(())
}
