//! Session-based serving: build a [`Deployment`], then drive a Poisson
//! request stream through the batch-forming scheduler at three offered
//! loads and watch weight DRAM traffic per image fall as batches form —
//! the paper's weight-residency amortization surviving the serving layer.
//!
//! ```sh
//! cargo run -p edea --example serving --release
//! ```

use edea::nn::mobilenet::MobileNetV1;
use edea::serve::{arrivals, Policy, Request};
use edea::tensor::rng;
use edea::{Deployment, EdeaConfig};

fn main() -> Result<(), edea::Error> {
    // One session object owns the calibrated network and the accelerator.
    let deployment = Deployment::builder()
        .model(MobileNetV1::synthetic(0.25, 42))
        .calibration(rng::synthetic_batch(2, 3, 32, 32, 7))
        .config(EdeaConfig::paper())
        .build()?;

    let sim = deployment.simulator_backend();
    let service = sim.cost().per_image_cycles();
    let single_weights = sim.cost().weight_bytes();
    println!(
        "deployment ready: {} DSC layers, {} cycles/image, {} weight B/image unbatched\n",
        deployment.qnet().layers().len(),
        service,
        single_weights
    );

    let n = 24;
    let policy = Policy::new(8, service)?;
    println!(
        "policy: max_batch = {}, max_wait = {} ticks",
        policy.max_batch, policy.max_wait
    );
    println!("\nload (x capacity) | mean batch | wgt B/img | p50 lat | p99 lat | img/s");
    println!("------------------+------------+-----------+---------+---------+--------");
    for load in [0.5, 1.0, 2.0] {
        let mean_gap = service as f64 / load;
        let ticks = arrivals::poisson(n, mean_gap, 1000 + load as u64);
        let inputs = (0..n)
            .map(|i| deployment.prepare(&rng::synthetic_image(3, 32, 32, 2000 + i as u64)))
            .collect();
        let report = deployment.serve(policy, Request::stream(&ticks, inputs)?)?;
        println!(
            "{load:>17.1} | {:>10.2} | {:>9.0} | {:>7} | {:>7} | {:>6.0}",
            report.mean_batch_size(),
            report.weight_bytes_per_image(),
            report.p50(),
            report.p99(),
            report.throughput_images_per_second(deployment.config()),
        );
    }
    println!(
        "\nhigher load -> deeper queues -> larger batches -> fewer weight bytes per image,\n\
         while every response stays bit-identical to the per-image path\n\
         (the serving suite asserts this against run_network and the golden executor)."
    );
    Ok(())
}
