//! Full-network run: all 13 DSC layers of MobileNetV1-CIFAR10 (width 1.0,
//! the paper's network) through the EDEA simulator, reporting the per-layer
//! series behind Figs. 10–13.
//!
//! ```sh
//! cargo run -p edea --example full_network --release
//! ```

use edea::core::power::EnergyModel;
use edea::core::{paperdata, timing};
use edea::nn::mobilenet::MobileNetV1;
use edea::nn::quantize::{QuantStrategy, QuantizedDscNetwork};
use edea::nn::sparsity::SparsityProfile;
use edea::tensor::rng;
use edea::{Edea, EdeaConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = EdeaConfig::paper();
    println!("building + quantizing MobileNetV1 (width 1.0)…");
    let mut model = MobileNetV1::synthetic(1.0, 2024);
    let calib = rng::synthetic_batch(2, 3, 32, 32, 99);
    let (qnet, _) = QuantizedDscNetwork::calibrate_shaped(
        &mut model,
        &calib,
        &SparsityProfile::paper(),
        QuantStrategy::paper(),
    )?;

    println!("running all 13 DSC layers on the accelerator…");
    let edea = Edea::new(cfg.clone())?;
    let input = qnet.quantize_input(&model.forward_stem(&calib[0]));
    let run = edea.run_network(&qnet, &input)?;

    // Calibrated energy model (anchored to the paper's silicon points).
    let power_stats = edea::core::power::paper_layer_stats(&cfg);
    let energy = EnergyModel::calibrate(&power_stats, &cfg, &paperdata::power_mw());

    println!();
    println!("layer |   MACs    | latency ns | GOPS   | mW     | TOPS/W | DWCzero | PWCzero");
    println!("------+-----------+------------+--------+--------+--------+---------+--------");
    let mut total_ops = 0u64;
    let mut total_ns = 0.0f64;
    for s in &run.stats.layers {
        let p = energy.layer_power_mw(s, &cfg);
        let ee = energy.layer_efficiency_tops_w(s, &cfg);
        total_ops += 2 * s.total_macs();
        total_ns += s.latency_ns(&cfg);
        println!(
            "{:5} | {:9} | {:10.0} | {:6.1} | {:6.1} | {:6.2} | {:6.1}% | {:5.1}%",
            s.shape.index,
            s.total_macs(),
            s.latency_ns(&cfg),
            s.throughput_gops(&cfg),
            p,
            ee,
            100.0 * s.mid_zero,
            100.0 * s.out_zero,
        );
    }
    println!();
    println!(
        "network total: {:.1} µs, average {:.1} GOPS",
        total_ns / 1000.0,
        total_ops as f64 / total_ns
    );
    let t = timing::network_timing(&edea::mobilenet_v1_cifar10(), &cfg);
    println!(
        "analytic model: {:.1} µs, average {:.1} GOPS (paper: avg 981.42 GOPS)",
        t.total_latency_ns / 1000.0,
        t.average_gops
    );
    println!("peak throughput: {:.1} GOPS (paper: 1024)", t.peak_gops);
    Ok(())
}
