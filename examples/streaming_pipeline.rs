//! The dual-engine streaming pipeline (paper Fig. 7) and what it buys:
//! renders the cycle-accurate timing diagram, then compares EDEA against
//! the serial-dual baseline (no overlap, external intermediate round-trip).
//!
//! ```sh
//! cargo run -p edea --example streaming_pipeline --release
//! ```

use edea::core::baseline::{parallel_speed_ratio, roundtrip_external_traffic, serial_dual};
use edea::core::pipeline::{render_gantt, simulate_layer};
use edea::core::timing;
use edea::mobilenet_v1_cifar10;
use edea::EdeaConfig;

fn main() {
    let cfg = EdeaConfig::paper();
    let layers = mobilenet_v1_cifar10();

    // Fig. 7 for the start of layer 0: initiation T0..T8, then one PWC tile
    // per cycle with the DWC running ahead in parallel.
    println!("== Fig. 7: pipeline timing, layer 0, first 40 cycles ==\n");
    let sim = simulate_layer(&layers[0], &cfg, 100_000);
    print!("{}", render_gantt(&sim.events, 40));
    println!(
        "\nfirst PWC output after {} cycles (paper: 9); layer total {} cycles",
        cfg.init_cycles, sim.total_cycles
    );

    println!("\n== dual parallel engines vs serial dual engines ==\n");
    println!("layer | EDEA cycles | serial cycles | speedup | extra ext bytes (round-trip)");
    println!("------+-------------+---------------+---------+------------------------------");
    let mut edea_total = 0u64;
    let mut serial_total = 0u64;
    for l in &layers {
        let edea = timing::layer_cycles(l, &cfg).total();
        let serial = serial_dual(l, &cfg);
        edea_total += edea;
        serial_total += serial.cycles;
        println!(
            "{:5} | {:11} | {:13} | {:6.2}x | {:10}",
            l.index,
            edea,
            serial.cycles,
            1.0 / parallel_speed_ratio(l, &cfg),
            serial.extra_external_bytes
        );
    }
    println!(
        "\nnetwork: {} vs {} cycles — {:.1}% latency saved by overlapping the engines",
        edea_total,
        serial_total,
        100.0 * (serial_total - edea_total) as f64 / serial_total as f64
    );
    let roundtrip: u64 = layers.iter().map(roundtrip_external_traffic).sum();
    println!("direct data transfer keeps {roundtrip} intermediate accesses on chip per inference");
}
