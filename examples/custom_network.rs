//! EDEA on a custom DSC network — the paper's closing claim: "This dataflow
//! is applicable to other datasets, and the accelerator is also suitable
//! for other DSC-based networks."
//!
//! Defines a deeper, 64×64-input DSC backbone (MobileNet-ish but not
//! MobileNetV1), runs the timing/utilization analysis, and executes one
//! quantized layer functionally.
//!
//! ```sh
//! cargo run -p edea --example custom_network --release
//! ```

use edea::core::timing;
use edea::nn::workload::LayerShape;
use edea::EdeaConfig;

/// A custom DSC backbone for 64×64 inputs.
fn custom_backbone() -> Vec<LayerShape> {
    // (in_spatial, d_in, k_out, stride)
    let spec = [
        (64, 16, 32, 1),
        (64, 32, 64, 2),
        (32, 64, 64, 1),
        (32, 64, 128, 2),
        (16, 128, 128, 1),
        (16, 128, 128, 1),
        (16, 128, 256, 2),
        (8, 256, 256, 1),
        (8, 256, 512, 2),
        (4, 512, 512, 1),
        (4, 512, 1024, 2),
    ];
    spec.iter()
        .enumerate()
        .map(|(index, &(in_spatial, d_in, k_out, stride))| {
            LayerShape::dsc(index, in_spatial, d_in, k_out, stride, 3)
        })
        .collect()
}

fn main() {
    let cfg = EdeaConfig::paper();
    let layers = custom_backbone();

    println!("== custom 64×64 DSC backbone on the unchanged EDEA configuration ==\n");
    println!("layer |  shape              |   MACs    | cycles  | GOPS   | DWC busy | PWC busy");
    println!("------+---------------------+-----------+---------+--------+----------+---------");
    let mut ops = 0u64;
    let mut cycles = 0u64;
    for l in &layers {
        let b = timing::layer_cycles(l, &cfg);
        ops += l.total_ops();
        cycles += b.total();
        println!(
            "{:5} | {:3}x{:3} {:4}->{:4} s{} | {:9} | {:7} | {:6.1} | {:7.1}% | {:6.1}%",
            l.index,
            l.in_spatial,
            l.in_spatial,
            l.d_in,
            l.k_out,
            l.stride,
            l.total_macs(),
            b.total(),
            timing::layer_throughput_gops(l, &cfg),
            100.0 * b.dwc_utilization(),
            100.0 * b.pwc_utilization(),
        );
    }
    println!(
        "\nnetwork: {} cycles, average {:.1} GOPS — every layer maps at 100% PE-array\n\
         utilization because channel counts are multiples of Td=8 / Tk=16, exactly\n\
         the property the paper's tiling was chosen for.",
        cycles,
        ops as f64 / cycles as f64
    );

    // Functional check on one custom-shaped layer: quantize a standalone DSC
    // block and push it through the accelerator bit-exactly.
    use edea::nn::mobilenet::MobileNetV1;
    use edea::nn::quantize::{QuantStrategy, QuantizedDscNetwork};
    use edea::nn::sparsity::SparsityProfile;
    use edea::tensor::rng;
    use edea::Edea;

    let mut model = MobileNetV1::synthetic(0.25, 5);
    let calib = rng::synthetic_batch(1, 3, 32, 32, 6);
    let (qnet, _) = QuantizedDscNetwork::calibrate_shaped(
        &mut model,
        &calib,
        &SparsityProfile::paper(),
        QuantStrategy::paper(),
    )
    .expect("calibration");
    let edea = Edea::new(cfg).expect("paper configuration");
    let input = qnet.quantize_input(&model.forward_stem(&calib[0]));
    let run = edea.run_layer(&qnet.layers()[0], &input).expect("run");
    let golden = edea::nn::executor::run_layer(&qnet.layers()[0], &input);
    assert_eq!(run.output, golden.output);
    println!("\nfunctional spot-check vs golden executor: bit-exact ✓");
}
