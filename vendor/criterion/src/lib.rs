//! Offline stand-in for the subset of the `criterion` crate this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a small benchmark harness exposing the same surface the benches were
//! written against: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] (with `sample_size`/`finish`),
//! [`Bencher::iter`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros.
//!
//! Methodology is deliberately simple: per benchmark it auto-calibrates an
//! iteration count targeting ~20 ms per sample, collects `sample_size`
//! samples, and prints the median, min and max ns/iteration. **Caveat:**
//! no HTML reports, no statistical regression analysis, no comparison
//! against saved baselines — numbers from this harness are for relative,
//! same-machine comparisons only.
//!
//! ```
//! // The API surface the benches compile against:
//! assert_eq!(criterion::black_box(2 + 2), 4);
//! ```

#![forbid(unsafe_code)]

use std::hint;
use std::time::Instant;

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Per-benchmark timing state handed to the closure of
/// [`Criterion::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    /// Collected sample durations, in ns per iteration.
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, recording one sample of `self.iters` iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            hint::black_box(routine());
        }
        let ns = start.elapsed().as_nanos() as f64 / self.iters as f64;
        self.samples.push(ns);
    }
}

/// Entry point, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    // Calibration pass: find an iteration count giving ~20 ms per sample.
    let mut probe = Bencher {
        iters: 1,
        samples: Vec::new(),
    };
    f(&mut probe);
    let per_iter_ns = probe.samples.last().copied().unwrap_or(1.0).max(1.0);
    let iters = ((20e6 / per_iter_ns) as u64).clamp(1, 1_000_000);

    let mut b = Bencher {
        iters,
        samples: Vec::with_capacity(sample_size),
    };
    while b.samples.len() < sample_size {
        f(&mut b);
        if b.samples.is_empty() {
            // The closure never called iter(); avoid an infinite loop.
            println!("{id:<40} (no measurement: bencher unused)");
            return;
        }
    }
    let mut s = b.samples;
    s.sort_by(f64::total_cmp);
    let median = s[s.len() / 2];
    println!(
        "{id:<40} median {:>12}/iter   (min {}, max {}, {} samples × {} iters)",
        fmt_ns(median),
        fmt_ns(s[0]),
        fmt_ns(s[s.len() - 1]),
        s.len(),
        iters,
    );
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, self.sample_size, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            sample_size: 10,
        }
    }
}

/// A group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a single named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
