//! Offline stand-in for the subset of the `proptest` crate this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a small property-testing engine exposing the same surface the test suite
//! was written against:
//!
//! * the [`proptest!`] macro (including `#![proptest_config(..)]`),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`],
//! * range strategies over primitives, [`any`](strategy::any), tuple
//!   strategies, [`collection::vec()`](strategy::collection::vec) and
//!   [`Strategy::prop_map`](strategy::Strategy::prop_map),
//! * [`ProptestConfig::with_cases`](test_runner::ProptestConfig::with_cases).
//!
//! Differences from upstream: no shrinking (a failing case reports its exact
//! inputs instead), and the case stream is seeded deterministically from the
//! test's module path + name so every run and every machine sees the same
//! cases — renaming a test module therefore reshuffles its generated inputs.
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(8))]
//!     // In a test module this would carry `#[test]`.
//!     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! addition_commutes();
//! ```

#![forbid(unsafe_code)]

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` — try another one.
        Reject,
        /// A `prop_assert*!` failed with this message.
        Fail(String),
    }

    /// Runner configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// The RNG driving case generation. Seeded deterministically per test.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Creates a generator seeded from `name` (FNV-1a), so each property
        /// sees its own stable case stream.
        #[must_use]
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self {
                inner: StdRng::seed_from_u64(h),
            }
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::fmt::Debug;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type `Value`.
    ///
    /// Unlike upstream proptest there is no value tree / shrinking: a
    /// strategy simply draws a fresh value per case.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value: Debug;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.new_value(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f32, f64);

    /// Types with a canonical "any value" strategy (full range for the
    /// integer primitives).
    pub trait Arbitrary: Sized + Debug {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.gen_range(<$t>::MIN..=<$t>::MAX)
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.gen_range(0u8..2) == 1
        }
    }

    /// Strategy over the full range of `T`; see [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy generating any value of `T` (mirrors `proptest::arbitrary::any`).
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.new_value(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A, B) (A, B, C) (A, B, C, D) (A, B, C, D, E) (A, B, C, D, E, F)
    }

    pub mod collection {
        use super::{Strategy, TestRng};
        use rand::Rng;
        use std::ops::{Range, RangeInclusive};

        /// Length specification for [`vec()`]: an exact length or a range.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                Self { lo: n, hi: n }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                Self {
                    lo: r.start,
                    hi: r.end - 1,
                }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                Self {
                    lo: *r.start(),
                    hi: *r.end(),
                }
            }
        }

        /// Strategy for vectors; see [`vec()`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let len = rng.gen_range(self.size.lo..=self.size.hi);
                (0..len).map(|_| self.element.new_value(rng)).collect()
            }
        }

        /// A strategy generating vectors of `element` values with a length
        /// drawn from `size` (an exact `usize` or a `usize` range).
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }
}

/// Mirrors `proptest::prelude::prop`: the crate root under a short alias.
pub mod prop {
    pub use crate::strategy::collection;
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Rejects the current case (it is regenerated, not counted) unless `cond`
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Fails the current case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n  {}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)+)
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Defines property tests. Mirrors `proptest::proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     /// doc
///     #[test]
///     fn my_prop(x in 0i32..100, v in prop::collection::vec(any::<i8>(), 8)) {
///         prop_assert!(x >= 0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(config = ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            config = (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default());
            $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut accepted: u32 = 0;
            let mut rejected: u64 = 0;
            while accepted < config.cases {
                assert!(
                    rejected < u64::from(config.cases) * 64 + 4096,
                    "prop_assume! rejected too many cases in `{}`",
                    stringify!($name),
                );
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)+
                let inputs = {
                    let mut s = ::std::string::String::new();
                    $(s.push_str(&format!(
                        concat!("\n  ", stringify!($arg), " = {:?}"), &$arg));)+
                    s
                };
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                        rejected += 1;
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property `{}` failed after {} passing case(s): {}\ninputs:{}",
                            stringify!($name), accepted, msg, inputs,
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(pair in (0i32..10, 10i32..20), v in prop::collection::vec(any::<i8>(), 1..5)) {
            prop_assert!(pair.0 < pair.1);
            prop_assert!(!v.is_empty() && v.len() < 5);
        }

        #[test]
        fn assume_skips(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn map_applies(s in (1usize..4).prop_map(|n| "ab".repeat(n))) {
            prop_assert!(s.len() % 2 == 0);
        }
    }

    #[test]
    fn deterministic_streams() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let s = 0i64..1_000_000;
        for _ in 0..50 {
            assert_eq!(s.new_value(&mut a), s.new_value(&mut b));
        }
    }
}
