//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal, deterministic implementation of the APIs it actually consumes:
//!
//! * [`rngs::StdRng`] — a seedable generator (xoshiro256\*\* seeded via
//!   SplitMix64; not the upstream ChaCha12, but deterministic and of
//!   more-than-sufficient quality for synthetic test data).
//! * [`SeedableRng::seed_from_u64`].
//! * [`Rng::gen_range`] over half-open and inclusive primitive ranges.
//!
//! Streams are stable across platforms and releases of this workspace: the
//! golden tests depend on that, so the generator here must never change.
//! **Caveat:** this is *not* the upstream `rand` crate — identical seeds
//! produce different streams than crates.io `rand`, and only the API subset
//! above exists.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut a = StdRng::seed_from_u64(7);
//! let mut b = StdRng::seed_from_u64(7);
//! let x: u32 = a.gen_range(0..1000);
//! assert_eq!(x, b.gen_range(0..1000)); // same seed, same stream
//! ```

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: 64 random bits per call.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Generates a value uniformly distributed over `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A range that can produce uniform samples, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Construction of seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256\*\*).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state, per
            // the xoshiro authors' recommendation.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Uniform f64 in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let v = self.start + (self.end - self.start) * unit_f64(rng);
        // Floating-point rounding can land exactly on `end`; fold back.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty f32 range");
        let v = self.start + ((self.end - self.start) as f64 * unit_f64(rng)) as f32;
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty inclusive f64 range");
        lo + (hi - lo) * unit_f64(rng)
    }
}

impl SampleRange<f32> for RangeInclusive<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty inclusive f32 range");
        lo + ((hi - lo) as f64 * unit_f64(rng)) as f32
    }
}

/// Uniform u64 in `[0, span)` (span > 0) via Lemire's multiply-shift with a
/// single rejection pass — unbiased and fast.
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(span);
        let lo = m as u64;
        if lo >= span.wrapping_neg() % span {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(below(rng, span) as $wide) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive integer range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $wide as $t;
                }
                (lo as $wide).wrapping_add(below(rng, span + 1) as $wide) as $t
            }
        }
    )*};
}

impl_int_range! {
    i8 => i64, i16 => i64, i32 => i64, i64 => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64,
    usize => u64, isize => i64,
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..u64::MAX), b.gen_range(0u64..u64::MAX));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-3i8..=7);
            assert!((-3..=7).contains(&v));
            let f = rng.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
            let u = rng.gen_range(10usize..11);
            assert_eq!(u, 10);
        }
    }

    #[test]
    fn full_i8_range_reaches_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        let vals: Vec<i8> = (0..4096).map(|_| rng.gen_range(-128i8..=127)).collect();
        assert!(vals.contains(&-128));
        assert!(vals.contains(&127));
    }
}
